package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a strict reader (and re-writer) for the
// Prometheus text exposition format version 0.0.4 — the format
// WriteText emits. It has two consumers: the CI metrics lint, which
// parses both daemons' /metrics output and fails on duplicate series,
// HELP/TYPE inconsistencies, or malformed samples; and the gateway's
// fleet federation, which scrapes each shard's /metrics, re-labels the
// parsed series with shard coordinates, and re-renders them on its own
// exposition page. Because the federated page is produced by
// WriteFamilies over parsed input, it is lint-clean by construction.

// Label is one label pair of a sample.
type Label struct {
	K, V string
}

// Sample is one series sample: the full sample name (including a
// _bucket/_sum/_count suffix for histogram series), its labels in
// source order, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// labelKey renders the labels in sorted order — the identity used for
// duplicate detection and for stable re-rendering.
func (s *Sample) labelKey() string {
	if len(s.Labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), s.Labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Label returns the value of label k and whether it is present.
func (s *Sample) Label(k string) (string, bool) {
	for _, l := range s.Labels {
		if l.K == k {
			return l.V, true
		}
	}
	return "", false
}

// ParsedFamily is one metric family read back from exposition text.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []Sample
}

// WithLabels returns a copy of the family with the given label pairs
// (k1, v1, k2, v2, ...) appended to every sample — how the gateway
// stamps scraped shard series with their fleet coordinates. A label
// key already present on a sample is overwritten.
func (f *ParsedFamily) WithLabels(kv ...string) *ParsedFamily {
	if len(kv)%2 != 0 {
		panic("telemetry: odd label list")
	}
	out := &ParsedFamily{Name: f.Name, Help: f.Help, Type: f.Type,
		Samples: make([]Sample, len(f.Samples))}
	for i, s := range f.Samples {
		ls := make([]Label, 0, len(s.Labels)+len(kv)/2)
		for _, l := range s.Labels {
			overridden := false
			for j := 0; j < len(kv); j += 2 {
				if l.K == kv[j] {
					overridden = true
					break
				}
			}
			if !overridden {
				ls = append(ls, l)
			}
		}
		for j := 0; j < len(kv); j += 2 {
			ls = append(ls, Label{kv[j], kv[j+1]})
		}
		out.Samples[i] = Sample{Name: s.Name, Labels: ls, Value: s.Value}
	}
	return out
}

// Gauge returns the value of the family's single unlabeled (or only)
// sample, for pulling one scalar (an uptime gauge, say) out of a
// scraped page. ok is false when the family has no samples.
func (f *ParsedFamily) Gauge() (v float64, ok bool) {
	if len(f.Samples) == 0 {
		return 0, false
	}
	return f.Samples[0].Value, true
}

// validTypes enumerates the exposition metric types.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseExposition reads one text-format exposition page strictly. It
// returns the families in page order, or an error describing the first
// violation: malformed lines, unknown TYPE, HELP/TYPE after the
// family's samples began, conflicting duplicate HELP or TYPE lines,
// a family's samples split into non-contiguous blocks, a histogram
// bucket without an le label, or the same series (name + label set)
// appearing twice.
func ParseExposition(r io.Reader) ([]*ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	fams := map[string]*ParsedFamily{}
	var order []*ParsedFamily
	seen := map[string]bool{} // family -> samples have begun
	closed := map[string]bool{}
	cur := "" // family of the previous sample line
	lineNo := 0

	get := func(name string) *ParsedFamily {
		f := fams[name]
		if f == nil {
			f = &ParsedFamily{Name: name, Type: "untyped"}
			fams[name] = f
			order = append(order, f)
		}
		return f
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if seen[name] {
					return nil, fmt.Errorf("line %d: %s for %s after its samples", lineNo, fields[1], name)
				}
				if fields[1] == "HELP" {
					text := ""
					if len(fields) == 4 {
						text = fields[3]
					}
					if f := fams[name]; f != nil && f.Help != "" && f.Help != text {
						return nil, fmt.Errorf("line %d: conflicting HELP for %s: %q vs %q", lineNo, name, f.Help, text)
					}
					get(name).Help = text
				} else {
					if len(fields) != 4 {
						return nil, fmt.Errorf("line %d: TYPE needs a type", lineNo)
					}
					typ := fields[3]
					if !validTypes[typ] {
						return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
					}
					if f := fams[name]; f != nil && f.Type != "untyped" && f.Type != typ {
						return nil, fmt.Errorf("line %d: conflicting TYPE for %s: %s vs %s", lineNo, name, f.Type, typ)
					}
					get(name).Type = typ
				}
				continue
			}
			continue // free-form comment
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(s.Name, fams)
		if cur != "" && cur != famName {
			closed[cur] = true
		}
		if closed[famName] {
			return nil, fmt.Errorf("line %d: samples of %s are not contiguous", lineNo, famName)
		}
		cur = famName
		f := get(famName)
		seen[famName] = true
		if f.Type == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
			if _, ok := s.Label("le"); !ok {
				return nil, fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, s.Name)
			}
		}
		key := s.Name + s.labelKey()
		for _, prev := range f.Samples {
			if prev.Name+prev.labelKey() == key {
				return nil, fmt.Errorf("line %d: duplicate series %s%s", lineNo, s.Name, s.labelKey())
			}
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// familyOf resolves a sample name to its family: exact match first,
// then the histogram/summary suffix conventions against declared
// families, then the bare name.
func familyOf(name string, fams map[string]*ParsedFamily) string {
	if f := fams[name]; f != nil && f.Type != "untyped" && f.Type != "histogram" && f.Type != "summary" {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return name
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, ls, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels = ls
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, strings.TrimSpace(rest))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: %w", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{' and
// returns the index one past the closing brace.
func parseLabels(s string) (end int, ls []Label, err error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, ls, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("malformed label block %q", s)
		}
		k := s[start:i]
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: unquoted value", k)
		}
		i++
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					b.WriteByte('\\')
					b.WriteByte(s[i])
				}
			} else {
				b.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("label %s: unterminated value", k)
		}
		i++ // closing '"'
		ls = append(ls, Label{k, b.String()})
	}
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", v)
	}
	return f, nil
}

// WriteFamilies renders parsed families back into exposition text, in
// slice order. Together with ParseExposition it round-trips WriteText
// output; the gateway uses it to emit the federated page.
func WriteFamilies(w io.Writer, fams []*ParsedFamily) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for i := range f.Samples {
			s := &f.Samples[i]
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.labelKey(), ftoa(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeFamilies folds extra families into base: a family whose name is
// new is appended; one matching an existing family's name and type has
// its samples appended to it. A type conflict drops the extra family
// and reports it in the returned list — federation must never corrupt
// the gateway's own exposition. Families from extra are copied, never
// mutated, so persistent scrape state can be merged on every render;
// base families may gain samples in place.
func MergeFamilies(base, extra []*ParsedFamily) (merged []*ParsedFamily, dropped []string) {
	byName := make(map[string]*ParsedFamily, len(base))
	merged = append(merged, base...)
	for _, f := range base {
		byName[f.Name] = f
	}
	for _, f := range extra {
		if have := byName[f.Name]; have != nil {
			if have.Type != f.Type {
				dropped = append(dropped, f.Name)
				continue
			}
			have.Samples = append(have.Samples, f.Samples...)
			continue
		}
		cp := &ParsedFamily{Name: f.Name, Help: f.Help, Type: f.Type,
			Samples: append([]Sample(nil), f.Samples...)}
		byName[f.Name] = cp
		merged = append(merged, cp)
	}
	return merged, dropped
}
