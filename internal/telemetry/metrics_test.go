package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket-assignment rule: a value
// lands in the first bucket whose upper bound is >= the value (Prometheus
// le semantics), and values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0, 1, 1.0001, 5, 7, 10, 10.5, 1e9} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: %v %v", bounds, counts)
	}
	// <=1: {0, 1}; <=5: {1.0001, 5}; <=10: {7, 10}; +Inf: {10.5, 1e9}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d: count %d, want %d (bounds %v counts %v)", i, counts[i], w, bounds, counts)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.0+1+1.0001+5+7+10+10.5+1e9; got != want {
		t.Errorf("sum %v, want %v", got, want)
	}
}

// TestWriteTextGolden pins the Prometheus text exposition byte for byte.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esh_queries_total", "Completed queries.", "status", "ok")
	c.Add(3)
	r.Counter("esh_queries_total", "Completed queries.", "status", "error").Inc()
	g := r.Gauge("esh_inflight", "Queries executing now.")
	g.Set(2)
	r.GaugeFunc("esh_cache_ratio", "Hit ratio.", func() float64 { return 0.5 })
	h := r.Histogram("esh_query_seconds", "Query latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esh_queries_total Completed queries.
# TYPE esh_queries_total counter
esh_queries_total{status="ok"} 3
esh_queries_total{status="error"} 1
# HELP esh_inflight Queries executing now.
# TYPE esh_inflight gauge
esh_inflight 2
# HELP esh_cache_ratio Hit ratio.
# TYPE esh_cache_ratio gauge
esh_cache_ratio 0.5
# HELP esh_query_seconds Query latency.
# TYPE esh_query_seconds histogram
esh_query_seconds_bucket{le="0.1"} 1
esh_query_seconds_bucket{le="1"} 2
esh_query_seconds_bucket{le="+Inf"} 3
esh_query_seconds_sum 5.55
esh_query_seconds_count 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestLabelEscaping checks backslash, quote and newline escaping in
// label values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "k", "a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "m{k=\"a\\\\b\\\"c\\nd\"} 1\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("got %q, want it to contain %q", b.String(), want)
	}
}

// TestGetOrCreate checks that re-registration returns the same metric.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	l1 := r.Counter("y_total", "", "a", "1")
	l2 := r.Counter("y_total", "", "a", "2")
	if l1 == l2 {
		t.Fatal("distinct labels returned the same counter")
	}
}

// TestConcurrentCounters hammers a shared counter, gauge and histogram
// from many goroutines; run under -race this doubles as a data-race
// check, and the totals must still be exact.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Concurrent get-or-create exercises the registry lock too.
			c := r.Counter("c_total", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g", "").Value(); got != workers*perWorker {
		t.Errorf("gauge %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("h", "", []float64{0.5})
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count %d, want %d", got, workers*perWorker)
	}
	_, counts := h.Snapshot()
	if counts[0] != workers*perWorker {
		t.Errorf("bucket 0 count %d, want %d", counts[0], workers*perWorker)
	}
}
