package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkRecord(id string, ms float64) *QueryRecord {
	return &QueryRecord{ID: id, Kind: "query", Start: time.Now(), DurationMS: ms,
		Outcome: "completed", Trace: &SpanData{Name: "query", DurationMS: ms}}
}

func TestRecorderSequentialWraparound(t *testing.T) {
	r := NewRecorder(8, 4, 0)
	for i := 0; i < 20; i++ {
		r.Record(mkRecord(fmt.Sprint(i), 1))
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d, want 20", r.Total())
	}
	recent := r.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recent))
	}
	// Newest first: 19, 18, ..., 12.
	for k, rec := range recent {
		if want := fmt.Sprint(19 - k); rec.ID != want {
			t.Fatalf("recent[%d] = %s, want %s", k, rec.ID, want)
		}
	}
	if got := r.Recent(3); len(got) != 3 || got[0].ID != "19" {
		t.Fatalf("Recent(3) = %v", got)
	}
}

func TestRecorderSlowCapture(t *testing.T) {
	r := NewRecorder(16, 4, 10*time.Millisecond)
	fast := mkRecord("fast", 1)
	slow := mkRecord("slow", 50)
	if r.Record(fast) {
		t.Fatal("1ms record classified slow at a 10ms threshold")
	}
	if !r.Record(slow) {
		t.Fatal("50ms record not classified slow at a 10ms threshold")
	}
	if fast.Trace != nil {
		t.Fatal("fast record kept its trace")
	}
	if slow.Trace == nil {
		t.Fatal("slow record lost its trace")
	}
	got := r.Slow()
	if len(got) != 1 || got[0].ID != "slow" || !got[0].Slow {
		t.Fatalf("Slow() = %+v", got)
	}
	if r.SlowTotal() != 1 {
		t.Fatalf("SlowTotal = %d", r.SlowTotal())
	}
	// Threshold 0 disables slow capture entirely.
	r.SetSlowThreshold(0)
	if r.Record(mkRecord("later", 500)) {
		t.Fatal("slow capture still active after SetSlowThreshold(0)")
	}
}

// TestRecorderConcurrentWraparound hammers a small ring from parallel
// writers (run under -race in CI): every published slot must hold one
// of the written records, the total must be exact, and a reader racing
// the writers must never crash or see a torn record.
func TestRecorderConcurrentWraparound(t *testing.T) {
	const writers, perWriter = 8, 500
	r := NewRecorder(32, 8, time.Nanosecond) // everything is "slow": exercises both rings
	valid := make(map[string]bool, writers*perWriter)
	var mu sync.Mutex
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Recent(0) {
				_ = rec.ID
				_ = rec.DurationMS
			}
			for _, rec := range r.Slow() {
				_ = rec.Trace
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				mu.Lock()
				valid[id] = true
				mu.Unlock()
				r.Record(mkRecord(id, float64(i)))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
	recent := r.Recent(0)
	if len(recent) != 32 {
		t.Fatalf("ring holds %d records after saturation, want 32", len(recent))
	}
	for _, rec := range recent {
		if !valid[rec.ID] {
			t.Fatalf("ring holds unknown record %q", rec.ID)
		}
	}
	for _, rec := range r.Slow() {
		if !valid[rec.ID] || rec.Trace == nil {
			t.Fatalf("slow ring corrupt: %+v", rec)
		}
	}
}

func TestFillFromTrace(t *testing.T) {
	root := &SpanData{
		Name: "query", DurationMS: 12.5,
		Children: []*SpanData{
			{Name: "decompose", DurationMS: 1.25},
			{Name: "prepare", DurationMS: 0.5},
			{Name: "vcp", DurationMS: 10, Attrs: map[string]float64{
				"pairs": 100, "pairs_pruned": 40, "verifier_calls": 30,
				"cache_hits": 10, "cache_misses": 20, "correspondences": 900,
				"kernel_nanos": 2.5e6, "lsh_skipped": 15,
			}},
			{Name: "score", DurationMS: 0.25},
		},
	}
	rec := &QueryRecord{ID: "x", Kind: "query"}
	rec.FillFromTrace(root)
	if rec.DurationMS != 12.5 || rec.Trace != root {
		t.Fatalf("duration/trace not adopted: %+v", rec)
	}
	if rec.StageMS["vcp"] != 10 || rec.StageMS["decompose"] != 1.25 {
		t.Fatalf("stage breakdown wrong: %v", rec.StageMS)
	}
	if rec.Pairs != 100 || rec.PairsPruned != 40 || rec.VerifierCalls != 30 ||
		rec.CacheHits != 10 || rec.CacheMisses != 20 || rec.Correspondences != 900 ||
		rec.PairsSkipped != 15 || rec.KernelMS != 2.5 {
		t.Fatalf("counters wrong: %+v", rec)
	}
}
