package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTree checks parenting through context and snapshot shape.
func TestSpanTree(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "query")
	cctx, child := StartSpan(ctx, "decompose")
	child.SetAttr("blocks", 4)
	_, grand := StartSpan(cctx, "lift")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "vcp")
	sib.AddAttr("pairs", 10)
	sib.AddAttr("pairs", 5)
	sib.End()
	root.End()

	snap := root.Snapshot()
	if snap.Name != "query" || len(snap.Children) != 2 {
		t.Fatalf("root %q with %d children", snap.Name, len(snap.Children))
	}
	dec := snap.Children[0]
	if dec.Name != "decompose" || dec.Attrs["blocks"] != 4 {
		t.Fatalf("decompose child: %+v", dec)
	}
	if len(dec.Children) != 1 || dec.Children[0].Name != "lift" {
		t.Fatalf("grandchild: %+v", dec.Children)
	}
	if snap.Children[1].Attrs["pairs"] != 15 {
		t.Fatalf("AddAttr sum: %+v", snap.Children[1].Attrs)
	}
}

// TestSpanDurations checks that child durations are bounded by the
// parent's when the children are sequential.
func TestSpanDurations(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "root")
	_, a := StartSpan(ctx, "a")
	time.Sleep(5 * time.Millisecond)
	a.End()
	_, b := StartSpan(ctx, "b")
	time.Sleep(5 * time.Millisecond)
	b.End()
	root.End()
	snap := root.Snapshot()
	var childSum float64
	for _, c := range snap.Children {
		childSum += c.DurationMS
	}
	if childSum <= 0 || childSum > snap.DurationMS {
		t.Fatalf("children sum %vms vs root %vms", childSum, snap.DurationMS)
	}
}

// TestDetachedSpan checks that a context without a span starts a new
// tree rather than panicking or attaching anywhere.
func TestDetachedSpan(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context carries a span")
	}
	ctx, s := StartSpan(context.Background(), "lone")
	if FromContext(ctx) != s {
		t.Fatal("context does not carry the new span")
	}
	s.End()
	if snap := s.Snapshot(); snap.Name != "lone" || len(snap.Children) != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestSpanConcurrentAttrs attaches children and attributes from many
// goroutines (the vcp stage pattern); -race validates the locking.
func TestSpanConcurrentAttrs(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "vcp")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, c := StartSpan(ctx, "row")
			root.AddAttr("hits", 2)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) != 8 || snap.Attrs["hits"] != 16 {
		t.Fatalf("children %d attrs %v", len(snap.Children), snap.Attrs)
	}
}

// TestWriteTree smoke-tests the -timings rendering.
func TestWriteTree(t *testing.T) {
	d := &SpanData{
		Name: "query", DurationMS: 3.5,
		Attrs:    map[string]float64{"strands": 7},
		Children: []*SpanData{{Name: "vcp", DurationMS: 2.25}},
	}
	var b strings.Builder
	d.WriteTree(&b)
	out := b.String()
	for _, want := range []string{"query", "3.500ms", "strands=7", "  vcp", "2.250ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
