// Package telemetry is the observability layer of the engine: a
// dependency-free metrics registry (atomic counters, gauges and
// histograms with Prometheus text-format exposition) plus lightweight
// span-based tracing for per-query stage breakdowns. Everything here is
// stdlib-only and cheap enough to leave enabled on the query hot path;
// per-pair work is aggregated locally and flushed to metrics once per
// stage, never per strand pair.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable, but counters are normally obtained from a Registry so they
// appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets and keeps
// a running sum, matching the Prometheus histogram model. Observe is
// lock-free: bucket counts are atomic and the sum is a CAS-updated
// float64.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets is the default duration histogram (seconds), spanning
// 1ms .. 10s like the Prometheus client default but extended downward
// for sub-millisecond pipeline stages.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns the bucket upper bounds and the per-bucket
// (non-cumulative) counts; the final count is the +Inf overflow bucket.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// metric is one sample within a family: a label set plus a value source.
type metric struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups samples sharing a name, help text, and type.
type family struct {
	name, help, typ string
	metrics         map[string]*metric // by rendered label string
	order           []string           // label strings in registration order
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration is get-or-create: asking twice for the same
// name+labels returns the same metric, so package-level instrumentation
// and multiple server instances can share counters safely.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultOnce sync.Once
var defaultReg *Registry

// Default returns the process-wide registry used by package-level
// instrumentation (index load/save timings and the like).
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// renderLabels turns k1,v1,k2,v2 pairs into a deterministic
// {k1="v1",k2="v2"} suffix with Prometheus escaping.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label list (want k1, v1, k2, v2, ...)")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the family, creating it with the given type, and the
// sample for the label set (creating it via mk). It panics if the name
// is reused with a different metric type — that is a programming error.
func (r *Registry) get(name, help, typ string, labels []string, mk func() *metric) *metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: map[string]*metric{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.typ, typ))
	}
	m := f.metrics[ls]
	if m == nil {
		m = mk()
		m.labels = ls
		f.metrics[ls] = m
		f.order = append(f.order, ls)
	}
	return m
}

// Counter returns the counter for name+labels, registering it on first
// use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.get(name, help, "counter", labels, func() *metric { return &metric{c: &Counter{}} })
	if m.c == nil {
		panic("telemetry: " + name + " is not a counter")
	}
	return m.c
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.get(name, help, "gauge", labels, func() *metric { return &metric{g: &Gauge{}} })
	if m.g == nil {
		panic("telemetry: " + name + " is not a settable gauge")
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same name+labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	m := r.get(name, help, "gauge", labels, func() *metric { return &metric{} })
	m.gf = fn
}

// Histogram returns the histogram for name+labels, registering it on
// first use with the given bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m := r.get(name, help, "histogram", labels, func() *metric { return &metric{h: newHistogram(bounds)} })
	if m.h == nil {
		panic("telemetry: " + name + " is not a histogram")
	}
	return m.h
}

// ftoa renders a float the way Prometheus expects (shortest round-trip,
// +Inf spelled "+Inf").
func ftoa(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4). Families appear in registration order; samples within
// a family in registration order, which keeps output stable for golden
// tests and scrape diffing.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, ls := range f.order {
			m := f.metrics[ls]
			var err error
			switch {
			case m.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.c.Value())
			case m.gf != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, ls, ftoa(m.gf()))
			case m.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, ls, ftoa(m.g.Value()))
			case m.h != nil:
				err = writeHistogram(w, f.name, ls, m.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count. Extra labels are merged with the le label.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	bounds, counts := h.Snapshot()
	withLe := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe(ftoa(b)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLe("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, ftoa(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}
