package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// trueQuantile returns the empirical quantile of the sorted data.
func trueQuantile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// rankOf returns the fraction of data at or below v.
func rankOf(sorted []float64, v float64) float64 {
	return float64(sort.SearchFloat64s(sorted, v)) / float64(len(sorted))
}

// TestQuantileAccuracy feeds the P² estimator streams from several
// distributions and checks the estimate against a sorted reference:
// the estimate's *rank* in the true data must land within a small
// window of the target quantile. Rank error is the right yardstick for
// a marker estimator — heavy tails make absolute error meaningless at
// p99 — and a 3-point window is far tighter than the histogram buckets
// the estimator complements.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform": func() float64 { return rng.Float64() },
		// Lognormal-ish latencies: most fast, a heavy slow tail.
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()) },
		// Bimodal: cache hits vs misses.
		"bimodal": func() float64 {
			if rng.Float64() < 0.7 {
				return 0.001 + 0.0002*rng.NormFloat64()
			}
			return 0.05 + 0.01*rng.NormFloat64()
		},
	}
	for name, draw := range dists {
		q := NewQuantiles(0.5, 0.95, 0.99)
		data := make([]float64, n)
		for i := range data {
			data[i] = draw()
			q.Observe(data[i])
		}
		sort.Float64s(data)
		for _, p := range []float64{0.5, 0.95, 0.99} {
			est := q.Quantile(p)
			if math.IsNaN(est) {
				t.Fatalf("%s p%g: NaN estimate", name, p*100)
			}
			gotRank := rankOf(data, est)
			if d := math.Abs(gotRank - p); d > 0.03 {
				t.Errorf("%s p%g: estimate %g sits at rank %.4f (%.4f off; true value %g)",
					name, p*100, est, gotRank, d, trueQuantile(data, p))
			}
		}
		if q.Count() != n {
			t.Fatalf("%s: count = %d, want %d", name, q.Count(), n)
		}
	}
}

func TestQuantileSmallStreams(t *testing.T) {
	q := NewQuantiles(0.5, 0.99)
	if !math.IsNaN(q.Quantile(0.5)) || !math.IsNaN(q.Max()) {
		t.Fatal("empty estimator must report NaN")
	}
	if !math.IsNaN(q.Quantile(0.25)) {
		t.Fatal("untracked quantile must report NaN")
	}
	q.Observe(3)
	q.Observe(1)
	q.Observe(2)
	// Below five observations the estimate is the exact sample quantile.
	if got := q.Quantile(0.5); got != 2 {
		t.Fatalf("median of {1,2,3} = %g, want 2", got)
	}
	if got := q.Max(); got != 3 {
		t.Fatalf("max = %g, want 3", got)
	}
}

func TestQuantileMonotoneAcrossTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := NewQuantiles(0.5, 0.95, 0.99)
	for i := 0; i < 5000; i++ {
		q.Observe(math.Exp(rng.NormFloat64()))
	}
	p50, p95, p99 := q.Quantile(0.5), q.Quantile(0.95), q.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantile estimates not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if max := q.Max(); p99 > max {
		t.Fatalf("p99 %g above observed max %g", p99, max)
	}
}

// TestQuantileConcurrent exercises the mutex path under -race.
func TestQuantileConcurrent(t *testing.T) {
	q := NewQuantiles(0.5, 0.99)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				q.Observe(rng.Float64())
				if i%100 == 0 {
					q.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", q.Count())
	}
}
