package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of work within a trace tree. Spans are
// created with StartSpan, which parents them under the span carried by
// the context (if any), so a query produces a stage-by-stage breakdown
// without any global state. Spans are safe for concurrent use: parallel
// workers may attach attributes to a shared stage span.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero until End
	attrs    map[string]float64
	order    []string // attr keys in first-set order
	children []*Span
	remote   []*SpanData // subtrees grafted from other processes
}

type spanKey struct{}

// StartSpan begins a span named name. If ctx carries a span, the new
// span is registered as its child; otherwise it starts a new detached
// tree (the common case for instrumented library code called without a
// trace — the tree is simply garbage once the caller drops it). The
// returned context carries the new span for further nesting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End marks the span finished and returns its duration. Calling End
// twice keeps the first end time.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	return d
}

// Duration returns the elapsed time so far (or the final duration once
// ended).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// SetAttr records a numeric attribute on the span (counts, sizes).
func (s *Span) SetAttr(key string, v float64) {
	s.mu.Lock()
	s.setLocked(key, v)
	s.mu.Unlock()
}

// AddAttr accumulates into a numeric attribute; parallel workers use it
// to sum their local counts into a shared stage span.
func (s *Span) AddAttr(key string, delta float64) {
	s.mu.Lock()
	if s.attrs == nil {
		s.setLocked(key, delta)
	} else if _, ok := s.attrs[key]; ok {
		s.attrs[key] += delta
	} else {
		s.setLocked(key, delta)
	}
	s.mu.Unlock()
}

func (s *Span) setLocked(key string, v float64) {
	if s.attrs == nil {
		s.attrs = map[string]float64{}
	}
	if _, ok := s.attrs[key]; !ok {
		s.order = append(s.order, key)
	}
	s.attrs[key] = v
}

// AttachRemote grafts an already-snapshotted span tree from another
// process under this span — how a gateway stitches each shard's
// server-side trace into its fan-out tree. nil is ignored. Remote
// subtrees appear after local children in Snapshot output.
func (s *Span) AttachRemote(d *SpanData) {
	if d == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, d)
	s.mu.Unlock()
}

// SpanData is the exported, JSON-friendly form of a span tree.
type SpanData struct {
	Name       string             `json:"name"`
	DurationMS float64            `json:"duration_ms"`
	Attrs      map[string]float64 `json:"attrs,omitempty"`
	Children   []*SpanData        `json:"children,omitempty"`
}

// Snapshot copies the span tree into SpanData. Unended spans report
// their elapsed time so far.
func (s *Span) Snapshot() *SpanData {
	s.mu.Lock()
	d := s.end.Sub(s.start)
	if s.end.IsZero() {
		d = time.Since(s.start)
	}
	out := &SpanData{
		Name:       s.name,
		DurationMS: float64(d.Microseconds()) / 1000,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]float64, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	remote := append([]*SpanData(nil), s.remote...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Snapshot())
	}
	out.Children = append(out.Children, remote...)
	return out
}

// Find returns the first node named name in a depth-first walk of the
// tree (the receiver included), or nil. The flight recorder uses it to
// pull per-query engine attributes off a known stage span.
func (d *SpanData) Find(name string) *SpanData {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// WriteTree pretty-prints the span tree as an indented breakdown, the
// format behind esh -timings.
func (d *SpanData) WriteTree(w io.Writer) {
	d.writeTree(w, 0)
}

func (d *SpanData) writeTree(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%-*s %10.3fms", indent, 24-2*depth, d.Name, d.DurationMS)
	if len(d.Attrs) > 0 {
		keys := make([]string, 0, len(d.Attrs))
		for k := range d.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%g", k, d.Attrs[k])
		}
		fmt.Fprintf(w, "  (%s)", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
	for _, c := range d.Children {
		c.writeTree(w, depth+1)
	}
}
