package telemetry

import (
	"sync/atomic"
	"time"
)

// QueryRecord is one query's entry in the flight recorder: the
// structured evidence every query leaves behind whether or not the
// caller asked for a trace. Records are immutable once handed to
// Recorder.Record, which is what makes the ring lock-free.
type QueryRecord struct {
	// ID is the request ID the serving layer assigned (the same token
	// in the X-Request-ID header and the request log line).
	ID string `json:"request_id"`
	// Kind is the query surface: "query", "partial" (shard-local), or
	// "gateway" (fan-out merge).
	Kind string `json:"kind"`
	// Start is when the engine (or fan-out) began; DurationMS its wall
	// time.
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	// Outcome is the terminal result label: completed, failure,
	// timeout, partial.
	Outcome string `json:"outcome"`
	Err     string `json:"error,omitempty"`
	// Generation / Kernel / Prefilter / Retrieval pin the corpus and
	// engine configuration the query ran under.
	Generation string `json:"generation,omitempty"`
	Kernel     string `json:"kernel,omitempty"`
	Prefilter  string `json:"prefilter,omitempty"`
	Retrieval  string `json:"retrieval,omitempty"`
	// StageMS breaks the duration down by pipeline stage (decompose,
	// prepare, vcp, score — or shard_N legs at the gateway).
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
	// Work counters, extracted from the span attributes the engine
	// accumulates per query (zero when the stage never ran).
	Pairs           int64   `json:"pairs,omitempty"`
	PairsPruned     int64   `json:"pairs_pruned,omitempty"`
	PairsSkipped    int64   `json:"pairs_skipped,omitempty"`
	VerifierCalls   int64   `json:"verifier_calls,omitempty"`
	Correspondences int64   `json:"correspondences,omitempty"`
	CacheHits       int64   `json:"cache_hits,omitempty"`
	CacheMisses     int64   `json:"cache_misses,omitempty"`
	KernelMS        float64 `json:"kernel_ms,omitempty"`
	GammaBatches    int64   `json:"gamma_batches,omitempty"`
	GammaBatchRows  int64   `json:"gamma_batch_rows,omitempty"`
	// Shards holds the per-shard fan-out outcomes of a gateway query.
	Shards []ShardOutcome `json:"shards,omitempty"`
	// Slow marks records at or above the recorder's threshold; only
	// those retain Trace, the full span tree.
	Slow  bool      `json:"slow,omitempty"`
	Trace *SpanData `json:"trace,omitempty"`
}

// ShardOutcome is one shard's contribution to a gateway query: which
// replica answered, how long it took, and how hard the gateway had to
// work for it.
type ShardOutcome struct {
	Shard    int     `json:"shard"`
	Replica  string  `json:"replica,omitempty"`
	Millis   float64 `json:"millis"`
	Attempts int     `json:"attempts,omitempty"`
	Hedged   bool    `json:"hedged,omitempty"`
	Err      string  `json:"error,omitempty"`
}

// spanCounters maps the engine's span attribute names to QueryRecord
// counter fields.
func (rec *QueryRecord) adoptAttrs(attrs map[string]float64) {
	for k, v := range attrs {
		switch k {
		case "pairs":
			rec.Pairs += int64(v)
		case "pairs_pruned":
			rec.PairsPruned += int64(v)
		case "lsh_skipped":
			rec.PairsSkipped += int64(v)
		case "verifier_calls":
			rec.VerifierCalls += int64(v)
		case "correspondences":
			rec.Correspondences += int64(v)
		case "cache_hits":
			rec.CacheHits += int64(v)
		case "cache_misses":
			rec.CacheMisses += int64(v)
		case "kernel_nanos":
			rec.KernelMS += v / 1e6
		case "gamma_batches":
			rec.GammaBatches += int64(v)
		case "gamma_batch_rows":
			rec.GammaBatchRows += int64(v)
		}
	}
}

// FillFromTrace populates duration, per-stage timings, and work
// counters from a snapshotted span tree (the engine's root query span).
// The trace is attached to the record; Recorder.Record drops it again
// for fast queries, which is what makes slow-query capture retroactive:
// the tree is always built, but only slow records keep it.
func (rec *QueryRecord) FillFromTrace(root *SpanData) {
	if root == nil {
		return
	}
	rec.Trace = root
	rec.DurationMS = root.DurationMS
	if len(root.Children) > 0 {
		rec.StageMS = make(map[string]float64, len(root.Children))
	}
	for _, c := range root.Children {
		rec.StageMS[c.Name] += c.DurationMS
		rec.adoptAttrs(c.Attrs)
	}
	rec.adoptAttrs(root.Attrs)
}

// Recorder is the always-on query flight recorder: a fixed-size ring of
// the most recent QueryRecords plus a smaller ring of slow ones. Writes
// are two atomic ops (claim a slot, publish the pointer), so recording
// costs nanoseconds next to a query; readers snapshot by walking the
// ring backwards from the write cursor. Under concurrent writes a
// reader can observe slots slightly out of claim order — records are
// evidence, not a WAL, and each one is internally consistent.
type Recorder struct {
	slots []atomic.Pointer[QueryRecord]
	next  atomic.Uint64

	slowSlots []atomic.Pointer[QueryRecord]
	slowNext  atomic.Uint64

	// thresholdNS gates the slow path; <= 0 disables slow capture.
	thresholdNS atomic.Int64
}

// Ring-size defaults: DefaultRecorderSize bounds the main ring (a few
// hundred KB of records), DefaultSlowLogSize the retained slow queries.
const (
	DefaultRecorderSize = 512
	DefaultSlowLogSize  = 64
)

// NewRecorder builds a recorder with the given ring sizes (values <= 0
// select the defaults) and slow-query threshold (<= 0 disables slow
// capture; every record still lands in the main ring, trace-stripped).
func NewRecorder(size, slowSize int, threshold time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	if slowSize <= 0 {
		slowSize = DefaultSlowLogSize
	}
	r := &Recorder{
		slots:     make([]atomic.Pointer[QueryRecord], size),
		slowSlots: make([]atomic.Pointer[QueryRecord], slowSize),
	}
	r.thresholdNS.Store(int64(threshold))
	return r
}

// SlowThreshold returns the current slow-query threshold (0 = disabled).
func (r *Recorder) SlowThreshold() time.Duration {
	d := r.thresholdNS.Load()
	if d <= 0 {
		return 0
	}
	return time.Duration(d)
}

// SetSlowThreshold replaces the slow-query threshold at runtime.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.thresholdNS.Store(int64(d)) }

// Record classifies rec against the slow threshold, strips the trace
// from fast records, and publishes rec into the ring(s). It reports
// whether rec was slow, so the caller can emit a structured log line.
// rec must not be mutated afterwards.
func (r *Recorder) Record(rec *QueryRecord) (slow bool) {
	th := r.thresholdNS.Load()
	slow = th > 0 && rec.DurationMS*1e6 >= float64(th)
	rec.Slow = slow
	if !slow {
		rec.Trace = nil
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
	if slow {
		j := r.slowNext.Add(1) - 1
		r.slowSlots[j%uint64(len(r.slowSlots))].Store(rec)
	}
	return slow
}

// Total returns how many records have ever been published; SlowTotal
// how many of them were slow. Totals keep counting after the rings wrap.
func (r *Recorder) Total() uint64     { return r.next.Load() }
func (r *Recorder) SlowTotal() uint64 { return r.slowNext.Load() }

// Recent returns up to n of the most recent records, newest first.
// n <= 0 returns the whole ring.
func (r *Recorder) Recent(n int) []*QueryRecord {
	return collect(r.slots, r.next.Load(), n)
}

// Slow returns the retained slow-query records, newest first.
func (r *Recorder) Slow() []*QueryRecord {
	return collect(r.slowSlots, r.slowNext.Load(), -1)
}

// collect walks a ring backwards from the write cursor, skipping slots
// a concurrent writer has claimed but not yet published.
func collect(slots []atomic.Pointer[QueryRecord], cursor uint64, n int) []*QueryRecord {
	size := uint64(len(slots))
	avail := cursor
	if avail > size {
		avail = size
	}
	if n > 0 && uint64(n) < avail {
		avail = uint64(n)
	}
	out := make([]*QueryRecord, 0, avail)
	for k := uint64(0); k < avail; k++ {
		if rec := slots[(cursor-1-k)%size].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}
