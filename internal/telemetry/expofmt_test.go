package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseExpositionRoundTrip renders a registry with every metric
// kind, parses it strictly, and re-renders the parsed families: the
// second rendering must equal the first (this is the property the
// gateway's federated page relies on).
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_requests_total", "Requests.", "result", "ok").Add(3)
	reg.Counter("t_requests_total", "Requests.", "result", "err").Add(1)
	reg.Gauge("t_temp", "Temperature.").Set(36.5)
	reg.Histogram("t_latency_seconds", "Latency.", []float64{0.1, 1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	fams, err := ParseExposition(strings.NewReader(first))
	if err != nil {
		t.Fatalf("strict parse of WriteText output: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Fatalf("counter family wrong: %+v", fams[0])
	}
	if v, ok := fams[1].Gauge(); !ok || v != 36.5 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
	if fams[2].Type != "histogram" || len(fams[2].Samples) != 5 { // 3 buckets (incl +Inf) + sum + count
		t.Fatalf("histogram family wrong: %+v", fams[2])
	}

	var buf2 bytes.Buffer
	if err := WriteFamilies(&buf2, fams); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("round trip differs:\n--- rendered\n%s--- re-rendered\n%s", first, buf2.String())
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate series": `# TYPE x counter
x{a="1"} 1
x{a="1"} 2
`,
		"duplicate series label order": `# TYPE x counter
x{a="1",b="2"} 1
x{b="2",a="1"} 2
`,
		"help mismatch": `# HELP x one thing
# TYPE x counter
x 1
# HELP x another thing
`,
		"type mismatch": `# TYPE x counter
# TYPE x gauge
x 1
`,
		"type after samples": `x 1
# TYPE x counter
`,
		"unknown type": `# TYPE x widget
x 1
`,
		"non-contiguous family": `# TYPE x counter
# TYPE y counter
x 1
y 1
x{a="2"} 2
`,
		"bucket without le": `# TYPE h histogram
h_bucket 3
`,
		"bad value":           "x pizza\n",
		"no name":             `{a="1"} 3` + "\n",
		"unterminated labels": `x{a="1 3` + "\n",
		"bad timestamp":       "x 1 later\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted\n%s", name, in)
		}
	}
}

func TestParseExpositionAccepts(t *testing.T) {
	in := `# a free-form comment
# HELP up help text
# TYPE up gauge
up 1
# TYPE inf_things gauge
inf_things +Inf
esc{path="a\\b\"c\nd"} 5
timestamped 3 1700000000000
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families: %+v", len(fams), fams)
	}
	if v, _ := fams[2].Samples[0].Label("path"); v != "a\\b\"c\nd" {
		t.Fatalf("escaped label = %q", v)
	}
	if fams[3].Type != "untyped" {
		t.Fatalf("implicit family type = %s", fams[3].Type)
	}
}

func TestWithLabelsAndMerge(t *testing.T) {
	in := `# TYPE q_total counter
q_total{result="ok"} 5
# TYPE lat histogram
lat_bucket{le="+Inf"} 2
lat_sum 0.4
lat_count 2
`
	scraped, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	shard0 := make([]*ParsedFamily, len(scraped))
	for i, f := range scraped {
		shard0[i] = f.WithLabels("shard", "0")
	}
	if v, ok := shard0[0].Samples[0].Label("shard"); !ok || v != "0" {
		t.Fatalf("shard label missing: %+v", shard0[0].Samples[0])
	}
	// Original families must be untouched.
	if _, ok := scraped[0].Samples[0].Label("shard"); ok {
		t.Fatal("WithLabels mutated its receiver")
	}

	own := []*ParsedFamily{
		{Name: "gw_up", Type: "gauge", Samples: []Sample{{Name: "gw_up", Value: 1}}},
		{Name: "q_total", Type: "counter", Samples: []Sample{{Name: "q_total", Value: 9}}},
	}
	merged, dropped := MergeFamilies(own, shard0)
	if len(dropped) != 0 {
		t.Fatalf("dropped %v", dropped)
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d families, want 3", len(merged))
	}
	// q_total collided by name+type: samples appended under one family.
	if len(merged[1].Samples) != 2 {
		t.Fatalf("q_total merge: %+v", merged[1])
	}
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, merged); err != nil {
		t.Fatal(err)
	}
	// The merged page must itself parse strictly (lint-clean federation).
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged page fails strict parse: %v\n%s", err, buf.String())
	}

	// A type conflict drops the scraped family, never the base one.
	conflict := []*ParsedFamily{{Name: "gw_up", Type: "counter",
		Samples: []Sample{{Name: "gw_up", Value: 4}}}}
	merged2, dropped2 := MergeFamilies(own[:1], conflict)
	if len(dropped2) != 1 || dropped2[0] != "gw_up" || len(merged2) != 1 || len(merged2[0].Samples) != 1 {
		t.Fatalf("type conflict handling: merged=%+v dropped=%v", merged2, dropped2)
	}

	// MergeFamilies must not mutate persistent scraped state across
	// renders: merging twice into fresh bases keeps sample counts stable.
	freshOwn := func() []*ParsedFamily {
		return []*ParsedFamily{{Name: "gw_up", Type: "gauge", Samples: []Sample{{Name: "gw_up", Value: 1}}}}
	}
	m1, _ := MergeFamilies(freshOwn(), shard0)
	m2, _ := MergeFamilies(freshOwn(), shard0)
	if len(m1[1].Samples) != len(m2[1].Samples) {
		t.Fatalf("repeated merge grew scraped family: %d vs %d", len(m1[1].Samples), len(m2[1].Samples))
	}
}
