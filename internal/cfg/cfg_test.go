package cfg

import (
	"testing"

	"repro/internal/asm"
)

func mustParse(t *testing.T, src string) *asm.Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestBuildStraightLine(t *testing.T) {
	p := mustParse(t, `proc f
	mov rax, rdi
	add rax, 1
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Insts) != 3 {
		t.Fatalf("insts = %d, want 3", len(g.Blocks[0].Insts))
	}
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", g.NumEdges())
	}
	if g.HasLoop() {
		t.Error("straight line reported as loop")
	}
}

func TestBuildDiamond(t *testing.T) {
	p := mustParse(t, `proc f
	test rdi, rdi
	jne elsebr
	mov rax, 1
	jmp done
elsebr:
	mov rax, 2
done:
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", len(g.Blocks), g)
	}
	// Entry has two successors: the else branch and fallthrough.
	if len(g.Blocks[0].Succs) != 2 {
		t.Fatalf("entry succs = %v", g.Blocks[0].Succs)
	}
	// done block has two predecessors.
	var done *Block
	for _, b := range g.Blocks {
		if b.Label == "done" {
			done = b
		}
	}
	if done == nil || len(done.Preds) != 2 {
		t.Fatalf("done block preds wrong: %+v", done)
	}
	if g.HasLoop() {
		t.Error("diamond reported as loop")
	}
}

func TestBuildLoop(t *testing.T) {
	p := mustParse(t, `proc f
	xor rax, rax
top:
	add rax, rdi
	dec rdi
	test rdi, rdi
	jne top
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasLoop() {
		t.Error("loop not detected")
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3\n%s", len(g.Blocks), g)
	}
	reach := g.Reachable()
	if len(reach) != 3 {
		t.Errorf("reachable = %d, want 3", len(reach))
	}
}

func TestBuildMultiReturn(t *testing.T) {
	p := mustParse(t, `proc f
	test rdi, rdi
	je zero
	mov rax, 1
	ret
zero:
	xor rax, rax
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3\n%s", len(g.Blocks), g)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestBuildCallsCounted(t *testing.T) {
	p := mustParse(t, `proc f
	call g
	call h
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCalls() != 2 {
		t.Errorf("calls = %d, want 2", g.NumCalls())
	}
	// Calls do not split blocks in this ISA.
	if len(g.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(g.Blocks))
	}
}

func TestBuildUnknownLabel(t *testing.T) {
	p := &asm.Proc{Name: "f", Insts: []asm.Inst{
		asm.MkJump("nowhere"), {Op: asm.RET},
	}}
	if _, err := Build(p); err == nil {
		t.Error("unknown label not reported")
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(&asm.Proc{Name: "empty"}); err == nil {
		t.Error("empty procedure not reported")
	}
}

func TestNoLabelInstructionsInBlocks(t *testing.T) {
	p := mustParse(t, `proc f
a:
b:
	mov rax, 1
	ret
endp`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		for _, in := range b.Insts {
			if in.Op == asm.LABEL {
				t.Fatal("LABEL leaked into block")
			}
		}
	}
}
