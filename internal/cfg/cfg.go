// Package cfg builds control flow graphs of basic blocks from assembly
// procedures. It stands in for the disassembler-side procedure analysis
// (the paper used an IDA Pro script) and feeds block-level strand
// extraction, as well as the structural features used by the BinDiff-like
// baseline.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/asm"
)

// Block is a basic block: a maximal single-entry straight-line
// instruction sequence. Insts never contains LABEL pseudo-instructions.
type Block struct {
	Index int
	Label string // the label that starts the block, if any
	Insts []asm.Inst
	Succs []int
	Preds []int
}

// Graph is the control flow graph of one procedure. Blocks[0] is the
// entry block.
type Graph struct {
	Proc   *asm.Proc
	Blocks []*Block
}

// Build constructs the CFG for p using the standard leader algorithm:
// leaders are the first instruction, every label target, and every
// instruction following a branch or return.
func Build(p *asm.Proc) (*Graph, error) {
	// Pass 1: find leaders over the non-label instruction stream while
	// recording which stream index each label names.
	type flatInst struct {
		inst asm.Inst
		lbl  string // label attached to this instruction, if any
	}
	var flat []flatInst
	pending := ""
	labelAt := make(map[string]int)
	for _, in := range p.Insts {
		if in.Op == asm.LABEL {
			if pending == "" {
				pending = in.Sym
			}
			labelAt[in.Sym] = len(flat)
			continue
		}
		flat = append(flat, flatInst{inst: in, lbl: pending})
		pending = ""
	}
	if len(flat) == 0 {
		return nil, fmt.Errorf("cfg: procedure %q has no instructions", p.Name)
	}
	if pending != "" {
		// Trailing label with no instruction after it; treat as naming the end.
		labelAt[pending] = len(flat)
	}

	leader := make([]bool, len(flat)+1)
	leader[0] = true
	for i, fi := range flat {
		if fi.inst.IsBranch() {
			t, ok := labelAt[fi.inst.Sym]
			if !ok {
				return nil, fmt.Errorf("cfg: %s: unknown label %q", p.Name, fi.inst.Sym)
			}
			if t < len(flat) {
				leader[t] = true
			}
			leader[i+1] = true
		} else if fi.inst.Op == asm.RET {
			leader[i+1] = true
		}
		if fi.lbl != "" {
			leader[i] = true
		}
	}

	// Pass 2: carve blocks.
	g := &Graph{Proc: p}
	blockAt := make(map[int]int) // stream index of leader -> block index
	start := 0
	for i := 1; i <= len(flat); i++ {
		if i == len(flat) || leader[i] {
			b := &Block{Index: len(g.Blocks), Label: flat[start].lbl}
			for j := start; j < i; j++ {
				b.Insts = append(b.Insts, flat[j].inst)
			}
			blockAt[start] = b.Index
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}

	// Pass 3: edges.
	blockStarts := make([]int, len(g.Blocks))
	{
		k := 0
		for i := range flat {
			if leader[i] {
				blockStarts[k] = i
				k++
			}
		}
	}
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi, b := range g.Blocks {
		last := b.Insts[len(b.Insts)-1]
		endIdx := blockStarts[bi] + len(b.Insts)
		switch {
		case last.Op == asm.RET:
			// no successors
		case last.Op == asm.JMP:
			if t := labelAt[last.Sym]; t < len(flat) {
				addEdge(bi, blockAt[t])
			}
		case last.Op == asm.JCC:
			if t := labelAt[last.Sym]; t < len(flat) {
				addEdge(bi, blockAt[t])
			}
			if endIdx < len(flat) {
				addEdge(bi, blockAt[endIdx])
			}
		default:
			if endIdx < len(flat) {
				addEdge(bi, blockAt[endIdx])
			}
		}
	}
	return g, nil
}

// NumEdges returns the total number of CFG edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Succs)
	}
	return n
}

// NumCalls returns the number of CALL instructions in the procedure.
func (g *Graph) NumCalls() int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Insts {
			if in.Op == asm.CALL {
				n++
			}
		}
	}
	return n
}

// Reachable returns the set of block indices reachable from the entry.
func (g *Graph) Reachable() map[int]bool {
	seen := map[int]bool{}
	var walk func(int)
	walk = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		for _, s := range g.Blocks[i].Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(0)
	}
	return seen
}

// HasLoop reports whether the CFG contains a cycle among reachable blocks.
func (g *Graph) HasLoop() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, s := range g.Blocks[i].Succs {
			if color[s] == gray {
				return true
			}
			if color[s] == white && visit(s) {
				return true
			}
		}
		color[i] = black
		return false
	}
	return len(g.Blocks) > 0 && visit(0)
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg %s (%d blocks, %d edges)\n", g.Proc.Name, len(g.Blocks), g.NumEdges())
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "B%d", blk.Index)
		if blk.Label != "" {
			fmt.Fprintf(&b, " (%s)", blk.Label)
		}
		fmt.Fprintf(&b, " -> %v\n", blk.Succs)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	return b.String()
}
