// Package cluster implements the paper's stated future work (§8):
// using the statistical similarity for clustering and classification
// rather than retrieval. It computes a normalized, symmetrized pairwise
// GES matrix over a set of procedures, groups them by average-linkage
// agglomerative clustering, and classifies unlabeled procedures by
// k-nearest-neighbour vote.
//
// GES values are not directly comparable across queries (each query has
// its own H0 and strand count), so the matrix normalizes every row by
// the query's self-score before symmetrizing.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
)

// Matrix is a symmetric pairwise similarity over a procedure set, with
// entries normalized into [0, 1] (1 = self-similarity).
type Matrix struct {
	Labels []string
	Sim    [][]float64
}

// PairwiseGES indexes the procedures into one database, queries each
// against it, and returns the normalized symmetric similarity matrix.
func PairwiseGES(procs []*asm.Proc, opts core.Options) (*Matrix, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("cluster: empty procedure set")
	}
	db := core.NewDB(opts)
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			return nil, err
		}
	}
	n := len(procs)
	m := &Matrix{Labels: make([]string, n), Sim: make([][]float64, n)}
	raw := make([][]float64, n)
	for i, p := range procs {
		m.Labels[i] = p.Name
		rep, err := db.Query(p)
		if err != nil {
			return nil, err
		}
		ges := make(map[string]float64, len(rep.Results))
		for _, ts := range rep.Results {
			ges[ts.Target.Name] = ts.GES
		}
		raw[i] = make([]float64, n)
		self := ges[p.Name]
		for j, t := range procs {
			v := ges[t.Name]
			switch {
			case self <= 0:
				raw[i][j] = 0
			case v <= 0:
				raw[i][j] = 0
			default:
				raw[i][j] = v / self
				if raw[i][j] > 1 {
					raw[i][j] = 1
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Sim[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m.Sim[i][j] = (raw[i][j] + raw[j][i]) / 2
		}
	}
	return m, nil
}

// Agglomerate groups indices by average-linkage agglomerative
// clustering, merging while the best inter-cluster similarity is at
// least threshold. Clusters are returned sorted by size (largest first),
// members sorted by index.
func Agglomerate(m *Matrix, threshold float64) [][]int {
	n := len(m.Labels)
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avgLink := func(a, b []int) float64 {
		sum := 0.0
		for _, i := range a {
			for _, j := range b {
				sum += m.Sim[i][j]
			}
		}
		return sum / float64(len(a)*len(b))
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, threshold
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := avgLink(clusters[i], clusters[j]); s >= best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	for _, c := range clusters {
		sort.Ints(c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i]) != len(clusters[j]) {
			return len(clusters[i]) > len(clusters[j])
		}
		return clusters[i][0] < clusters[j][0]
	})
	return clusters
}

// Classify labels index i by a k-nearest-neighbour vote among the
// indices that have a non-empty label. Neighbours vote with their
// similarity as weight; ties break toward the nearer neighbour. Returns
// the winning label and the total weight behind it.
func Classify(m *Matrix, labels []string, i, k int) (string, float64) {
	type cand struct {
		j   int
		sim float64
	}
	var cands []cand
	for j := range m.Labels {
		if j == i || labels[j] == "" {
			continue
		}
		cands = append(cands, cand{j, m.Sim[i][j]})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].sim > cands[b].sim })
	if k > len(cands) {
		k = len(cands)
	}
	votes := map[string]float64{}
	for _, c := range cands[:k] {
		votes[labels[c.j]] += c.sim
	}
	bestLabel, bestW := "", -1.0
	for _, c := range cands[:k] { // iterate in nearness order for tie-breaks
		l := labels[c.j]
		if votes[l] > bestW {
			bestLabel, bestW = l, votes[l]
		}
	}
	return bestLabel, bestW
}
