package cluster

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/minic"
)

// Four distinct source procedures, each compiled with several toolchains.
// Clustering must recover the source grouping; kNN must label a held-out
// compilation correctly.

var sources = map[string]string{
	"hash_loop": `
func hash_loop(buf, len) {
	var h = 0x1505;
	var i = 0;
	while (i < len) {
		h = h * 33 + load8(buf + i);
		h = h ^ (h >>u 7);
		i = i + 1;
	}
	return h;
}`,
	"range_clip": `
func range_clip(arr, n, lo, hi) {
	var i = 0;
	var fixed = 0;
	while (i < n) {
		var v = load64(arr + i * 8);
		if (v < lo) {
			store64(arr + i * 8, lo);
			fixed = fixed + 1;
		} else {
			if (v > hi) {
				store64(arr + i * 8, hi);
				fixed = fixed + 1;
			}
		}
		i = i + 1;
	}
	return fixed;
}`,
	"fmt_dec": `
func fmt_dec(v, out) {
	var tmp = v;
	var digits = 0;
	while (tmp > 0) {
		tmp = tmp / 10;
		digits = digits + 1;
	}
	if (digits == 0) {
		digits = 1;
	}
	var pos = digits;
	tmp = v;
	while (pos > 0) {
		pos = pos - 1;
		store8(out + pos, 0x30 + tmp % 10);
		tmp = tmp / 10;
	}
	store8(out + digits, 0);
	return digits;
}`,
	"pair_swap": `
func pair_swap(arr, n) {
	var i = 0;
	var swaps = 0;
	while (i + 1 < n) {
		var a = load64(arr + i * 8);
		var b = load64(arr + (i + 1) * 8);
		if (a > b) {
			store64(arr + i * 8, b);
			store64(arr + (i + 1) * 8, a);
			swaps = swaps + 1;
		}
		i = i + 2;
	}
	return swaps;
}`,
}

// buildSet compiles each source with the given toolchains.
func buildSet(t *testing.T, tcNames []string) ([]*asm.Proc, []string) {
	t.Helper()
	var procs []*asm.Proc
	var srcOf []string
	for name, src := range map[string]string(sources) {
		prog := minic.MustParse(src)
		for _, tcName := range tcNames {
			tc, ok := compile.ByName(tcName)
			if !ok {
				t.Fatalf("no toolchain %s", tcName)
			}
			p, err := compile.Compile(prog, name, tc, compile.O2())
			if err != nil {
				t.Fatal(err)
			}
			p.Name = name + "@" + tcName
			p.Source.SourceSym = name
			procs = append(procs, p)
			srcOf = append(srcOf, name)
		}
	}
	return procs, srcOf
}

func TestPairwiseGESMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering is slow")
	}
	procs, _ := buildSet(t, []string{"gcc-4.9", "clang-3.5"})
	m, err := PairwiseGES(procs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(procs)
	for i := 0; i < n; i++ {
		if m.Sim[i][i] < 0.99 {
			t.Errorf("self similarity of %s = %v", m.Labels[i], m.Sim[i][i])
		}
		for j := 0; j < n; j++ {
			if m.Sim[i][j] != m.Sim[j][i] {
				t.Fatal("matrix not symmetric")
			}
			if m.Sim[i][j] < 0 || m.Sim[i][j] > 1 {
				t.Fatalf("similarity out of range: %v", m.Sim[i][j])
			}
		}
	}
}

func TestAgglomerateRecoversSources(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering is slow")
	}
	procs, srcOf := buildSet(t, []string{"gcc-4.9", "gcc-4.8", "clang-3.5"})
	m, err := PairwiseGES(procs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Agglomerate(m, 0.5)
	// Every cluster must be pure (one source), and the majority of
	// sources must form a multi-member cluster.
	multi := 0
	for _, c := range clusters {
		src := srcOf[c[0]]
		for _, i := range c[1:] {
			if srcOf[i] != src {
				t.Errorf("mixed cluster: %v", labelsOf(m, c))
			}
		}
		if len(c) >= 2 {
			multi++
		}
	}
	if multi < 3 {
		t.Errorf("only %d multi-member clusters; clustering failed to group compilations: %v",
			multi, clusters)
	}
}

func labelsOf(m *Matrix, c []int) []string {
	out := make([]string, len(c))
	for i, idx := range c {
		out[i] = m.Labels[idx]
	}
	return out
}

func TestClassifyHeldOut(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering is slow")
	}
	procs, srcOf := buildSet(t, []string{"gcc-4.9", "gcc-4.6", "clang-3.5"})
	m, err := PairwiseGES(procs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for hold := range procs {
		labels := make([]string, len(procs))
		for i := range procs {
			if i != hold {
				labels[i] = srcOf[i]
			}
		}
		got, weight := Classify(m, labels, hold, 3)
		if weight <= 0 {
			t.Fatalf("no vote weight for %s", m.Labels[hold])
		}
		total++
		if got == srcOf[hold] {
			correct++
		}
	}
	// The gcc-gcc pairs are trivial; cross-vendor holds are harder. A
	// strong majority must classify correctly.
	if correct*4 < total*3 {
		t.Errorf("kNN classified %d/%d correctly", correct, total)
	}
}

func TestAgglomerateThresholdOne(t *testing.T) {
	// With an impossible threshold nothing merges.
	m := &Matrix{
		Labels: []string{"a", "b"},
		Sim:    [][]float64{{1, 0.2}, {0.2, 1}},
	}
	clusters := Agglomerate(m, 1.1)
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
	// With a permissive threshold everything merges.
	clusters = Agglomerate(m, 0.1)
	if len(clusters) != 1 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestPairwiseGESEmpty(t *testing.T) {
	if _, err := PairwiseGES(nil, core.Options{}); err == nil {
		t.Error("empty set accepted")
	}
}

func TestClassifyNoLabels(t *testing.T) {
	m := &Matrix{Labels: []string{"a", "b"}, Sim: [][]float64{{1, 0.5}, {0.5, 1}}}
	got, w := Classify(m, []string{"", ""}, 0, 3)
	if got != "" || w > 0 {
		t.Errorf("classification without labels returned %q (%v)", got, w)
	}
}
