package bindiff

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/minic"
)

func extract(t *testing.T, p *asm.Proc) *Features {
	t.Helper()
	f, err := Extract(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// buildLib compiles a set of decoy packages plus one vuln with a
// toolchain, returning the feature library.
func buildLib(t *testing.T, tcName string, patched bool) []*Features {
	t.Helper()
	tc, ok := compile.ByName(tcName)
	if !ok {
		t.Fatal("no toolchain")
	}
	var lib []*Features
	v := corpus.Vulns()[0]
	p, err := corpus.CompileVuln(v, tc, patched)
	if err != nil {
		t.Fatal(err)
	}
	lib = append(lib, extract(t, p))
	for _, d := range corpus.Decoys()[:4] {
		procs, err := compile.CompileAll(minic.MustParse(d.Src), tc, compile.O2())
		if err != nil {
			t.Fatal(err)
		}
		for _, dp := range procs {
			dp.Source.SourceSym = dp.Name
			lib = append(lib, extract(t, dp))
		}
	}
	return lib
}

func TestSelfDiffMatchesEverything(t *testing.T) {
	lib := buildLib(t, "gcc-4.9", false)
	matches := Diff(lib, lib)
	if len(matches) != len(lib) {
		t.Fatalf("self diff matched %d of %d", len(matches), len(lib))
	}
	for _, m := range matches {
		if m.Query.Name != m.Target.Name {
			t.Errorf("self diff paired %s with %s", m.Query.Name, m.Target.Name)
		}
		if m.Similarity < 0.99 {
			t.Errorf("self match similarity %v", m.Similarity)
		}
	}
}

func TestCrossVendorMostlyFails(t *testing.T) {
	// Table 3's result: across vendors (and with patches), BinDiff
	// finds the correct pairing only when block/branch structure is
	// small and preserved. We assert the *shape*: the correct-match rate
	// is well below the self-diff rate.
	q := buildLib(t, "gcc-4.9", false)
	tgt := buildLib(t, "icc-15.0.1", true)
	matches := Diff(q, tgt)
	correct := 0
	for _, m := range matches {
		if m.Query.Source.SourceSym == m.Target.Source.SourceSym {
			correct++
		}
	}
	if correct == len(q) {
		t.Errorf("cross-vendor diff matched everything correctly (%d) — too good for a structural matcher", correct)
	}
}

func TestFeaturesExtracted(t *testing.T) {
	src := `proc f
	test rdi, rdi
	je out
	call g
	mov rax, 1
	ret
out:
	xor eax, eax
	ret
endp`
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	f := extract(t, p)
	if f.Blocks != 3 || f.Edges != 2 || f.Calls != 1 {
		t.Errorf("features = %+v", f)
	}
	if f.MnHash == 0 || f.MnHash == 1 {
		t.Errorf("mnemonic hash = %d", f.MnHash)
	}
	if len(f.Degrees) != 3 {
		t.Errorf("degrees = %v", f.Degrees)
	}
}

func TestMnemonicHashCommutative(t *testing.T) {
	// Reordered instructions keep the same small-prime product.
	p1, _ := asm.ParseProc("proc a\n\tadd rax, 1\n\tsub rbx, 2\n\tret\nendp")
	p2, _ := asm.ParseProc("proc b\n\tsub rbx, 2\n\tadd rax, 1\n\tret\nendp")
	if extract(t, p1).MnHash != extract(t, p2).MnHash {
		t.Error("mnemonic product should be order-independent")
	}
}

func TestStructuralSimilarityBounds(t *testing.T) {
	p1, _ := asm.ParseProc("proc a\n\tadd rax, 1\n\tret\nendp")
	f := extract(t, p1)
	if s := structuralSimilarity(f, f); s < 0.99 || s > 1.01 {
		t.Errorf("self structural similarity = %v", s)
	}
}

func TestFindMatch(t *testing.T) {
	lib := buildLib(t, "gcc-4.9", false)
	matches := Diff(lib, lib)
	if _, ok := FindMatch(matches, lib[0].Name); !ok {
		t.Error("FindMatch missed an existing match")
	}
	if _, ok := FindMatch(matches, "nothing"); ok {
		t.Error("FindMatch invented a match")
	}
}
