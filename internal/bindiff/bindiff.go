// Package bindiff reimplements the structural whole-library matcher the
// paper evaluates in Table 3 (zynamics BinDiff). Following the features
// the BinDiff manual describes — and deliberately ignoring instruction
// semantics, as its documentation states — procedures are matched across
// two libraries by: exact (blocks, edges, calls) structural triples,
// mnemonic small-prime products, degree sequences, and finally a nearest
// structural neighbour with a similarity/confidence estimate.
//
// Being purely syntactic-structural, the matcher succeeds only when
// block/branch structure is preserved — the paper's observation that it
// works for the two cases where the procedure's shape survived
// compilation and patching.
package bindiff

import (
	"math"
	"sort"

	"repro/internal/asm"
	"repro/internal/cfg"
)

// Features summarizes one procedure structurally.
type Features struct {
	Name    string
	Source  asm.Provenance
	Blocks  int
	Edges   int
	Calls   int
	Insts   int
	Degrees []int  // sorted out-degree sequence
	MnHash  uint64 // small-prime product of mnemonics (commutative)
}

// Extract computes the feature vector of one procedure.
func Extract(p *asm.Proc) (*Features, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	f := &Features{
		Name:   p.Name,
		Source: p.Source,
		Blocks: len(g.Blocks),
		Edges:  g.NumEdges(),
		Calls:  g.NumCalls(),
		Insts:  p.NumInsts(),
		MnHash: 1,
	}
	for _, b := range g.Blocks {
		f.Degrees = append(f.Degrees, len(b.Succs))
		for _, in := range b.Insts {
			f.MnHash *= prime(uint64(in.Op)*16 + uint64(in.CC))
		}
	}
	sort.Ints(f.Degrees)
	return f, nil
}

// prime maps an opcode id to a small prime (BinDiff's "small primes
// product" mnemonic hash).
func prime(id uint64) uint64 {
	primes := [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
		47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
		127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
		197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271,
		277, 281, 283, 293, 307, 311}
	return primes[id%uint64(len(primes))]
}

// Match is one procedure pairing produced by Diff.
type Match struct {
	Query, Target *Features
	Similarity    float64
	Confidence    float64
}

// minNeighbourSim is the acceptance threshold of the nearest-neighbour
// pass and minNeighbourMargin the required lead over the runner-up;
// below either, BinDiff reports no match rather than guessing (its
// match propagation only accepts unambiguous pairings).
const (
	minNeighbourSim    = 0.72
	minNeighbourMargin = 0.04
)

// Diff matches the procedures of a query library against a target
// library, the way BinDiff matches two executables: matched pairs are
// removed from both sides after each pass.
//
// Pass 1: identical (blocks, edges, calls) triple AND mnemonic hash.
// Pass 2: identical triple alone, if unique on both sides.
// Pass 3: nearest neighbour by structural distance, accepted only above
// a minimum similarity.
func Diff(query, target []*Features) []Match {
	var out []Match
	usedQ := make([]bool, len(query))
	usedT := make([]bool, len(target))

	type key struct {
		b, e, c int
		mh      uint64
	}
	// Pass 1: exact structure + mnemonics, unique on both sides.
	pass := func(keyOf func(*Features) key, sim, conf float64) {
		qk := map[key][]int{}
		tk := map[key][]int{}
		for i, f := range query {
			if !usedQ[i] {
				qk[keyOf(f)] = append(qk[keyOf(f)], i)
			}
		}
		for i, f := range target {
			if !usedT[i] {
				tk[keyOf(f)] = append(tk[keyOf(f)], i)
			}
		}
		for k, qi := range qk {
			ti := tk[k]
			if len(qi) == 1 && len(ti) == 1 {
				usedQ[qi[0]] = true
				usedT[ti[0]] = true
				out = append(out, Match{
					Query: query[qi[0]], Target: target[ti[0]],
					Similarity: sim, Confidence: conf,
				})
			}
		}
	}
	pass(func(f *Features) key {
		return key{f.Blocks, f.Edges, f.Calls, f.MnHash}
	}, 1.0, 0.99)
	pass(func(f *Features) key {
		return key{f.Blocks, f.Edges, f.Calls, 0}
	}, 0.9, 0.85)

	// Pass 3: nearest structural neighbour.
	for i, q := range query {
		if usedQ[i] {
			continue
		}
		bestJ, bestSim, secondSim := -1, 0.0, 0.0
		for j, t := range target {
			if usedT[j] {
				continue
			}
			s := structuralSimilarity(q, t)
			if s > bestSim {
				secondSim = bestSim
				bestSim, bestJ = s, j
			} else if s > secondSim {
				secondSim = s
			}
		}
		if bestJ >= 0 && bestSim >= minNeighbourSim && bestSim-secondSim >= minNeighbourMargin {
			usedQ[i] = true
			usedT[bestJ] = true
			out = append(out, Match{
				Query: q, Target: target[bestJ],
				Similarity: bestSim,
				Confidence: bestSim * 0.9,
			})
		}
	}
	return out
}

// structuralSimilarity compares two feature vectors in [0, 1].
func structuralSimilarity(a, b *Features) float64 {
	rel := func(x, y int) float64 {
		if x == 0 && y == 0 {
			return 1
		}
		d := math.Abs(float64(x - y))
		m := math.Max(float64(x), float64(y))
		return 1 - d/m
	}
	s := 0.35*rel(a.Blocks, b.Blocks) +
		0.25*rel(a.Edges, b.Edges) +
		0.2*rel(a.Calls, b.Calls) +
		0.1*rel(a.Insts, b.Insts)
	// Degree-sequence overlap.
	same := 0
	n := len(a.Degrees)
	if len(b.Degrees) < n {
		n = len(b.Degrees)
	}
	for i := 0; i < n; i++ {
		if a.Degrees[i] == b.Degrees[i] {
			same++
		}
	}
	maxLen := len(a.Degrees)
	if len(b.Degrees) > maxLen {
		maxLen = len(b.Degrees)
	}
	if maxLen > 0 {
		s += 0.1 * float64(same) / float64(maxLen)
	}
	return s
}

// FindMatch reports how Diff paired the given query procedure, if at all.
func FindMatch(matches []Match, queryName string) (Match, bool) {
	for _, m := range matches {
		if m.Query.Name == queryName {
			return m, true
		}
	}
	return Match{}, false
}
