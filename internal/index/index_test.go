package index

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/vcp"
)

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const memStyle = `proc save_pair
	mov [rdi], rsi
	mov [rdi+8], rdx
	mov rax, rsi
	add rax, rdx
	mov [rdi+16], rax
	call helper
	ret
endp`

func parse(t *testing.T, src string) *asm.Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}, Workers: 2})
	for _, src := range []string{iccStyle, memStyle} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func saveBytes(t *testing.T, db *core.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip is the format's core guarantee: a reloaded DB produces
// bit-identical Query reports.
func TestRoundTrip(t *testing.T) {
	db := buildDB(t)
	snap := saveBytes(t, db)

	db2, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumTargets() != db.NumTargets() || db2.NumUniqueStrands() != db.NumUniqueStrands() ||
		db2.TotalStrands() != db.TotalStrands() {
		t.Fatalf("reloaded shape %d/%d/%d, want %d/%d/%d",
			db2.NumTargets(), db2.NumUniqueStrands(), db2.TotalStrands(),
			db.NumTargets(), db.NumUniqueStrands(), db.TotalStrands())
	}

	for _, qsrc := range []string{gccStyle, memStyle} {
		r1, err := db.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := db2.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumStrands != r2.NumStrands || r1.NumBlocks != r2.NumBlocks {
			t.Fatalf("query shape differs: %+v vs %+v", r1, r2)
		}
		if len(r1.Results) != len(r2.Results) {
			t.Fatalf("result count %d vs %d", len(r1.Results), len(r2.Results))
		}
		for i := range r1.Results {
			a, b := r1.Results[i], r2.Results[i]
			if a.Target.Name != b.Target.Name {
				t.Fatalf("rank %d: %s vs %s", i, a.Target.Name, b.Target.Name)
			}
			if a.GES != b.GES || a.SLOG != b.SLOG || a.SVCP != b.SVCP {
				t.Fatalf("rank %d (%s): scores (%v,%v,%v) vs (%v,%v,%v)",
					i, a.Target.Name, a.GES, a.SLOG, a.SVCP, b.GES, b.SLOG, b.SVCP)
			}
		}
	}
}

// TestRoundTripStable checks save→load→save produces identical bytes
// (the snapshot is a fixed point).
func TestRoundTripStable(t *testing.T) {
	db := buildDB(t)
	snap := saveBytes(t, db)
	db2, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if snap2 := saveBytes(t, db2); !bytes.Equal(snap, snap2) {
		t.Fatal("snapshot is not a save/load fixed point")
	}
}

func TestOptionsPersist(t *testing.T) {
	db := core.NewDB(core.Options{
		VCP:      vcp.Config{MinVars: 3, SizeRatio: 0.25},
		SigmoidK: 7.5,
		PathLen:  2,
	})
	if err := db.AddTarget(parse(t, iccStyle)); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(bytes.NewReader(saveBytes(t, db)))
	if err != nil {
		t.Fatal(err)
	}
	got, want := db2.Options(), db.Options()
	if got.SigmoidK != want.SigmoidK || got.PathLen != want.PathLen ||
		got.VCP.MinVars != want.VCP.MinVars || got.VCP.SizeRatio != want.VCP.SizeRatio {
		t.Fatalf("options %+v, want %+v", got, want)
	}
}

func TestTruncatedRejected(t *testing.T) {
	snap := saveBytes(t, buildDB(t))
	for _, cut := range []int{len(snap) / 2, len(snap) - 1} {
		_, err := Load(bytes.NewReader(snap[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestCorruptedRejected(t *testing.T) {
	snap := saveBytes(t, buildDB(t))
	// Flip one byte deep in the body: must fail the checksum, never
	// parse successfully.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	_, err := Load(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	for _, src := range []string{
		"",
		"notanindex 1 0 aa\n",
		"eshidx 999 0 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n",
		"eshidx one two three\n",
	} {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Fatalf("header %q accepted", src)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := buildDB(t)
	path := t.TempDir() + "/corpus.eshidx"
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumTargets() != db.NumTargets() {
		t.Fatalf("targets %d, want %d", db2.NumTargets(), db.NumTargets())
	}
}
