package index

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/vcp"
)

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const memStyle = `proc save_pair
	mov [rdi], rsi
	mov [rdi+8], rdx
	mov rax, rsi
	add rax, rdx
	mov [rdi+16], rax
	call helper
	ret
endp`

func parse(t *testing.T, src string) *asm.Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}, Workers: 2})
	for _, src := range []string{iccStyle, memStyle} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func saveBytes(t *testing.T, db *core.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip is the format's core guarantee: a reloaded DB produces
// bit-identical Query reports.
func TestRoundTrip(t *testing.T) {
	db := buildDB(t)
	snap := saveBytes(t, db)

	db2, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumTargets() != db.NumTargets() || db2.NumUniqueStrands() != db.NumUniqueStrands() ||
		db2.TotalStrands() != db.TotalStrands() {
		t.Fatalf("reloaded shape %d/%d/%d, want %d/%d/%d",
			db2.NumTargets(), db2.NumUniqueStrands(), db2.TotalStrands(),
			db.NumTargets(), db.NumUniqueStrands(), db.TotalStrands())
	}

	for _, qsrc := range []string{gccStyle, memStyle} {
		r1, err := db.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := db2.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumStrands != r2.NumStrands || r1.NumBlocks != r2.NumBlocks {
			t.Fatalf("query shape differs: %+v vs %+v", r1, r2)
		}
		if len(r1.Results) != len(r2.Results) {
			t.Fatalf("result count %d vs %d", len(r1.Results), len(r2.Results))
		}
		for i := range r1.Results {
			a, b := r1.Results[i], r2.Results[i]
			if a.Target.Name != b.Target.Name {
				t.Fatalf("rank %d: %s vs %s", i, a.Target.Name, b.Target.Name)
			}
			if a.GES != b.GES || a.SLOG != b.SLOG || a.SVCP != b.SVCP {
				t.Fatalf("rank %d (%s): scores (%v,%v,%v) vs (%v,%v,%v)",
					i, a.Target.Name, a.GES, a.SLOG, a.SVCP, b.GES, b.SLOG, b.SVCP)
			}
		}
	}
}

// TestRoundTripStable checks save→load→save produces identical bytes
// (the snapshot is a fixed point).
func TestRoundTripStable(t *testing.T) {
	db := buildDB(t)
	snap := saveBytes(t, db)
	db2, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if snap2 := saveBytes(t, db2); !bytes.Equal(snap, snap2) {
		t.Fatal("snapshot is not a save/load fixed point")
	}
}

func TestOptionsPersist(t *testing.T) {
	db := core.NewDB(core.Options{
		VCP:      vcp.Config{MinVars: 3, SizeRatio: 0.25, GammaBatch: 16},
		SigmoidK: 7.5,
		PathLen:  2,
	})
	if err := db.AddTarget(parse(t, iccStyle)); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(bytes.NewReader(saveBytes(t, db)))
	if err != nil {
		t.Fatal(err)
	}
	got, want := db2.Options(), db.Options()
	if got.SigmoidK != want.SigmoidK || got.PathLen != want.PathLen ||
		got.VCP.MinVars != want.VCP.MinVars || got.VCP.SizeRatio != want.VCP.SizeRatio ||
		got.VCP.GammaBatch != 16 {
		t.Fatalf("options %+v, want %+v", got, want)
	}
}

// TestGammaBatchOptionCompat: snapshots written before the gammabatch
// option existed must still load — the unknown-key-tolerant options
// decoder leaves the width zero and NewDB normalizes it to the default.
func TestGammaBatchOptionCompat(t *testing.T) {
	snap := saveBytes(t, buildDB(t))
	nl := bytes.IndexByte(snap, '\n')
	if nl < 0 {
		t.Fatal("snapshot has no header line")
	}
	var out []string
	stripped := false
	for _, ln := range strings.Split(string(snap[nl+1:]), "\n") {
		if tag, _, _ := strings.Cut(ln, " "); tag == "options" {
			var kept []string
			for _, tok := range strings.Fields(ln) {
				if strings.HasPrefix(tok, "gammabatch=") {
					stripped = true
					continue
				}
				kept = append(kept, tok)
			}
			ln = strings.Join(kept, " ")
		}
		out = append(out, ln)
	}
	if !stripped {
		t.Fatal("snapshot options line does not carry gammabatch=")
	}
	body := strings.Join(out, "\n")
	sum := sha256.Sum256([]byte(body))
	old := fmt.Sprintf("%s %d %d %s\n%s", Magic, Version, len(body), hex.EncodeToString(sum[:]), body)

	db2, err := Load(strings.NewReader(old))
	if err != nil {
		t.Fatalf("load pre-gammabatch snapshot: %v", err)
	}
	if got := db2.Options().VCP.GammaBatch; got != vcp.DefaultGammaBatch {
		t.Fatalf("GammaBatch after old-snapshot load = %d, want default %d",
			got, vcp.DefaultGammaBatch)
	}
}

func TestTruncatedRejected(t *testing.T) {
	snap := saveBytes(t, buildDB(t))
	for _, cut := range []int{len(snap) / 2, len(snap) - 1} {
		_, err := Load(bytes.NewReader(snap[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestCorruptedRejected(t *testing.T) {
	snap := saveBytes(t, buildDB(t))
	// Flip one byte deep in the body: must fail the checksum, never
	// parse successfully.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	_, err := Load(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	for _, src := range []string{
		"",
		"notanindex 1 0 aa\n",
		"eshidx 999 0 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n",
		"eshidx one two three\n",
	} {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Fatalf("header %q accepted", src)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := buildDB(t)
	path := t.TempDir() + "/corpus.eshidx"
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumTargets() != db.NumTargets() {
		t.Fatalf("targets %d, want %d", db2.NumTargets(), db.NumTargets())
	}
}

// buildProbeDB is buildDB in probe retrieval mode, which makes Export
// carry the built probe table so the snapshot exercises the version-4
// retrieval section.
func buildProbeDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}, Retrieval: core.RetrievalProbe})
	for _, src := range []string{iccStyle, memStyle} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestRetrievalTableRoundTrip checks the version-4 retrieval section:
// a probe-mode save persists the table, a load adopts it byte-for-byte
// (same slab checksum as the builder produced), and the re-saved
// snapshot is a fixed point.
func TestRetrievalTableRoundTrip(t *testing.T) {
	db := buildProbeDB(t)
	want := db.RetrievalIndex().Checksum()
	snap := saveBytes(t, db)

	ex, err := LoadExport(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Retrieval == nil {
		t.Fatal("probe-mode snapshot did not persist the retrieval table")
	}
	if ex.Retrieval.N != len(ex.Strands) {
		t.Fatalf("persisted table covers %d strands, snapshot has %d", ex.Retrieval.N, len(ex.Strands))
	}
	if ex.Retrieval.Checksum != want {
		t.Fatalf("persisted table checksum %016x, builder produced %016x", ex.Retrieval.Checksum, want)
	}

	db2, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.RetrievalIndex().Checksum(); got != want {
		t.Fatalf("adopted table checksum %016x, want %016x", got, want)
	}
	if snap2 := saveBytes(t, db2); !bytes.Equal(snap, snap2) {
		t.Fatal("probe-mode snapshot is not a save/load fixed point")
	}
	compareQueries(t, db, db2)
}

// downgrade rewrites a current-version snapshot as an older format:
// it strips the sections (and option keys) that version did not have
// and recomputes the header. This is how the compat tests synthesize
// genuine old snapshots without checking in binary fixtures.
func downgrade(t *testing.T, snap []byte, version int) []byte {
	t.Helper()
	nl := bytes.IndexByte(snap, '\n')
	if nl < 0 {
		t.Fatal("snapshot has no header line")
	}
	var out []string
	for _, ln := range strings.Split(string(snap[nl+1:]), "\n") {
		tag, _, _ := strings.Cut(ln, " ")
		switch {
		case tag == "options" && version < 4:
			var kept []string
			for _, tok := range strings.Fields(ln) {
				if !strings.HasPrefix(tok, "retrieval=") {
					kept = append(kept, tok)
				}
			}
			ln = strings.Join(kept, " ")
		case version < 5 && tag == "wal":
			continue
		case version < 4 && (tag == "retrieval" || tag == "rd" || tag == "rk" || tag == "ro" || tag == "ri"):
			continue
		case version < 3 && (tag == "shard" || tag == "mults" || tag == "m"):
			continue
		}
		out = append(out, ln)
	}
	body := strings.Join(out, "\n")
	sum := sha256.Sum256([]byte(body))
	return []byte(fmt.Sprintf("%s %d %d %s\n%s", Magic, version, len(body), hex.EncodeToString(sum[:]), body))
}

// TestOldVersionsLoad checks that version-2 and version-3 snapshots
// (no retrieval section, and for v2 no shard/multiplicity records)
// still load, and that the probe table rebuilt from their strands is
// identical to the one a current snapshot persists — so probe-mode
// answers do not depend on the snapshot's age.
func TestOldVersionsLoad(t *testing.T) {
	db := buildProbeDB(t)
	want := db.RetrievalIndex().Checksum()
	snap := saveBytes(t, db)

	for _, v := range []int{2, 3} {
		old := downgrade(t, snap, v)
		ex, err := LoadExport(bytes.NewReader(old))
		if err != nil {
			t.Fatalf("load v%d export: %v", v, err)
		}
		if ex.Retrieval != nil {
			t.Fatalf("v%d snapshot decoded a retrieval table it cannot contain", v)
		}
		db2, err := Load(bytes.NewReader(old))
		if err != nil {
			t.Fatalf("load v%d: %v", v, err)
		}
		if db2.NumTargets() != db.NumTargets() || db2.NumUniqueStrands() != db.NumUniqueStrands() {
			t.Fatalf("v%d: reloaded shape %d/%d, want %d/%d", v,
				db2.NumTargets(), db2.NumUniqueStrands(), db.NumTargets(), db.NumUniqueStrands())
		}
		if got := db2.RetrievalIndex().Checksum(); got != want {
			t.Fatalf("v%d: rebuilt table checksum %016x, persisted-table build %016x", v, got, want)
		}
		compareQueries(t, db, db2)
	}
}

// compareQueries runs the shared query set against both databases and
// demands identical rankings and scores.
func compareQueries(t *testing.T, db, db2 *core.DB) {
	t.Helper()
	for _, qsrc := range []string{gccStyle, memStyle} {
		r1, err := db.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := db2.Query(parse(t, qsrc))
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Results) != len(r2.Results) {
			t.Fatalf("result count %d vs %d", len(r1.Results), len(r2.Results))
		}
		for i := range r1.Results {
			a, b := r1.Results[i], r2.Results[i]
			if a.Target.Name != b.Target.Name || a.GES != b.GES || a.SLOG != b.SLOG || a.SVCP != b.SVCP {
				t.Fatalf("rank %d: (%s %v %v %v) vs (%s %v %v %v)",
					i, a.Target.Name, a.GES, a.SLOG, a.SVCP, b.Target.Name, b.GES, b.SLOG, b.SVCP)
			}
		}
	}
}
