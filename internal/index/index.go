// Package index persists an indexed core.DB to disk and reloads it, so
// a corpus is indexed once (eshcorpus -save) and served many times
// (eshd, esh -load) without re-running the disassemble→CFG→lift→strand
// pipeline.
//
// Snapshot layout: a single header line
//
//	eshidx <version> <body-length> <sha256-of-body>\n
//
// followed by the body — a line-oriented text encoding of the engine
// options, the unique strands (canonical IVL text, multiplicity), and
// the targets (provenance plus strand index lists). The header makes
// corruption detectable before any parsing: a truncated file fails the
// length check and a bit flip fails the checksum. Verifier preparations
// are recomputed at load time (they are deterministic functions of the
// strands), which keeps snapshots small and format-stable.
package index

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/ivl"
	"repro/internal/sketch"
	"repro/internal/strand"
	"repro/internal/telemetry"
)

// Magic identifies snapshot files; Version is the current format.
// Version 2 added the sketch section (per-strand MinHash signatures for
// the LSH prefilter) and the prefilter/lshbands/lshrows option keys;
// version 3 added the shard-identity record and the per-target strand
// multiplicity section (what lets a corpus split into shards whose
// local strand counts sum exactly to the union's); version 4 added the
// retrieval section (the banded-LSH probe table's posting slabs, with
// their own checksum) and the retrieval option key; version 5 added the
// wal record (compaction generation + journal high-water mark, what
// lets a restarting daemon skip already-folded journal records) and the
// retrmaxdelta option key. Older versions still load: signatures are
// recomputed, multiplicities default to 1, the probe table is rebuilt
// from the strands (deterministically, so probe-mode answers are
// identical either way), and generation and high-water mark default to
// zero (replay everything).
const (
	Magic      = "eshidx"
	Version    = 5
	MinVersion = 1
)

// Info identifies one snapshot: the format version, body size, body
// checksum, and the shard identity baked into it. The checksum is what
// a gateway compares against its manifest to refuse serving a query
// across a mixed-version shard fleet.
type Info struct {
	Version  int
	BodyLen  int
	Checksum string // hex sha256 of the body
	Shard    core.ShardInfo
}

// Snapshot I/O metrics live in the process-wide default registry (the
// package has no natural instance to hang them on) and are exposed by
// eshd's /metrics alongside the engine and server registries.
var (
	mLoadSeconds = telemetry.Default().Histogram("esh_index_load_seconds",
		"Wall time to load and verify one index snapshot.", nil)
	mSaveSeconds = telemetry.Default().Histogram("esh_index_save_seconds",
		"Wall time to encode and write one index snapshot.", nil)
	mSnapshotBytes = telemetry.Default().Gauge("esh_index_snapshot_bytes",
		"Body size of the most recently loaded or saved snapshot.")
)

// Save writes a snapshot of the database to w. It is SaveCtx with a
// background context.
func Save(w io.Writer, db *core.DB) error {
	return SaveCtx(context.Background(), w, db)
}

// SaveCtx writes a snapshot of the database to w, recording an
// "index.save" telemetry span under the one carried by ctx (if any).
func SaveCtx(ctx context.Context, w io.Writer, db *core.DB) error {
	_, err := SaveInfoCtx(ctx, w, db)
	return err
}

// SaveInfoCtx is SaveCtx returning the written snapshot's identity
// (checksum, size, shard) for manifest construction.
func SaveInfoCtx(ctx context.Context, w io.Writer, db *core.DB) (Info, error) {
	return saveExport(ctx, w, db.Export())
}

// SaveExportCtx writes a snapshot of already-exported state — the shard
// splitter's path, which never materializes a prepared DB per shard.
func SaveExportCtx(ctx context.Context, w io.Writer, ex *core.Export) (Info, error) {
	return saveExport(ctx, w, ex)
}

func saveExport(ctx context.Context, w io.Writer, ex *core.Export) (Info, error) {
	_, sp := telemetry.StartSpan(ctx, "index.save")
	defer func() { mSaveSeconds.Observe(sp.End().Seconds()) }()
	body := encodeBody(ex)
	sp.SetAttr("bytes", float64(len(body)))
	mSnapshotBytes.Set(float64(len(body)))
	sum := sha256.Sum256(body)
	info := Info{Version: Version, BodyLen: len(body), Checksum: hex.EncodeToString(sum[:]), Shard: ex.Shard}
	if _, err := fmt.Fprintf(w, "%s %d %d %s\n", Magic, Version, len(body), info.Checksum); err != nil {
		return Info{}, fmt.Errorf("index: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return Info{}, fmt.Errorf("index: write body: %w", err)
	}
	return info, nil
}

// SaveFile writes a snapshot atomically: to a temp file in the target
// directory, then rename.
func SaveFile(path string, db *core.DB) error {
	_, err := saveFileExport(path, db.Export())
	return err
}

// SaveExportFile is SaveFile over already-exported state, returning the
// snapshot identity.
func SaveExportFile(path string, ex *core.Export) (Info, error) {
	return saveFileExport(path, ex)
}

func saveFileExport(path string, ex *core.Export) (Info, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".eshidx-*")
	if err != nil {
		return Info{}, fmt.Errorf("index: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	info, err := saveExport(context.Background(), bw, ex)
	if err != nil {
		tmp.Close()
		return Info{}, err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return Info{}, fmt.Errorf("index: flush %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return Info{}, fmt.Errorf("index: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return Info{}, fmt.Errorf("index: %w", err)
	}
	return info, nil
}

// Load reads a snapshot and rebuilds a queryable database, re-preparing
// every strand. The rebuilt DB answers Query identically to the one that
// was saved. It is LoadCtx with a background context.
func Load(r io.Reader) (*core.DB, error) {
	return LoadCtx(context.Background(), r)
}

// LoadCtx reads a snapshot and rebuilds a queryable database, recording
// an "index.load" telemetry span (with decode and prepare child spans)
// under the one carried by ctx, if any.
func LoadCtx(ctx context.Context, r io.Reader) (*core.DB, error) {
	db, _, err := LoadInfoCtx(ctx, r)
	return db, err
}

// LoadInfoCtx is LoadCtx returning the snapshot's identity alongside
// the rebuilt database.
func LoadInfoCtx(ctx context.Context, r io.Reader) (*core.DB, Info, error) {
	lctx, sp := telemetry.StartSpan(ctx, "index.load")
	defer func() { mLoadSeconds.Observe(sp.End().Seconds()) }()

	_, spDec := telemetry.StartSpan(lctx, "decode")
	ex, info, err := LoadExportInfo(r)
	spDec.End()
	if err != nil {
		return nil, Info{}, err
	}
	sp.SetAttr("strands", float64(len(ex.Strands)))
	sp.SetAttr("targets", float64(len(ex.Targets)))

	// FromExport re-prepares every strand for the verifier — usually the
	// dominant cost of a load, hence its own child span.
	_, spPrep := telemetry.StartSpan(lctx, "prepare")
	db, err := core.FromExport(ex)
	spPrep.End()
	if err != nil {
		return nil, Info{}, fmt.Errorf("index: %w", err)
	}
	return db, info, nil
}

// LoadFile loads a snapshot from path.
func LoadFile(path string) (*core.DB, error) {
	return LoadFileCtx(context.Background(), path)
}

// LoadFileCtx loads a snapshot from path with LoadCtx tracing.
func LoadFileCtx(ctx context.Context, path string) (*core.DB, error) {
	db, _, err := LoadFileInfoCtx(ctx, path)
	return db, err
}

// LoadFileInfoCtx loads a snapshot from path, returning its identity
// (version, checksum, shard) for serving-side exposition.
func LoadFileInfoCtx(ctx context.Context, path string) (*core.DB, Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Info{}, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	db, info, err := LoadInfoCtx(ctx, bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, Info{}, fmt.Errorf("index: load %s: %w", path, err)
	}
	return db, info, nil
}

// LoadExport reads and verifies a snapshot, returning the decoded state
// without preparing strands.
func LoadExport(r io.Reader) (*core.Export, error) {
	ex, _, err := LoadExportInfo(r)
	return ex, err
}

// LoadExportInfo is LoadExport returning the snapshot identity.
func LoadExportInfo(r io.Reader) (*core.Export, Info, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, Info{}, fmt.Errorf("index: read header: %w", err)
	}
	var magic, sumHex string
	var version, bodyLen int
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), "%s %d %d %s", &magic, &version, &bodyLen, &sumHex); err != nil {
		return nil, Info{}, fmt.Errorf("index: malformed header %q", strings.TrimSpace(header))
	}
	if magic != Magic {
		return nil, Info{}, fmt.Errorf("index: not a snapshot (magic %q)", magic)
	}
	if version < MinVersion || version > Version {
		return nil, Info{}, fmt.Errorf("index: unsupported format version %d (have %d..%d)", version, MinVersion, Version)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, Info{}, fmt.Errorf("index: read body: %w", err)
	}
	if len(body) != bodyLen {
		return nil, Info{}, fmt.Errorf("index: truncated snapshot: body is %d bytes, header says %d", len(body), bodyLen)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, Info{}, fmt.Errorf("index: checksum mismatch: snapshot is corrupted")
	}
	mSnapshotBytes.Set(float64(len(body)))
	ex, err := decodeBody(body, version)
	if err != nil {
		return nil, Info{}, err
	}
	return ex, Info{Version: version, BodyLen: bodyLen, Checksum: sumHex, Shard: ex.Shard}, nil
}

// ---- body encoding ----

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func typeCode(t ivl.Type) int {
	if t == ivl.Mem {
		return 1
	}
	return 0
}

func codeType(c int) (ivl.Type, error) {
	switch c {
	case 0:
		return ivl.Int, nil
	case 1:
		return ivl.Mem, nil
	}
	return ivl.Int, fmt.Errorf("unknown type code %d", c)
}

func encodeBody(ex *core.Export) []byte {
	var b bytes.Buffer
	o := ex.Opts
	fmt.Fprintf(&b, "options workers=%d sigmoidk=%s pathlen=%d pathmaxblocks=%d cachepairs=%d vcpsamples=%d vcpminvars=%d vcpsizeratio=%s vcpmaxcorr=%d prefilter=%s lshbands=%d lshrows=%d lshmincont=%s kernel=%s retrieval=%s retrmaxdelta=%d gammabatch=%d\n",
		o.Workers, ftoa(o.SigmoidK), o.PathLen, o.PathMaxBlocks, o.VCPCachePairs,
		o.VCP.Samples, o.VCP.MinVars, ftoa(o.VCP.SizeRatio), o.VCP.MaxCorrespondences,
		o.Prefilter, o.LSHBands, o.LSHRows, ftoa(o.LSHMinContainment), o.VCP.Kernel, o.Retrieval,
		o.RetrievalMaxDelta, o.VCP.GammaBatch)

	// Shard identity (format version 3). All zero/empty for an unsharded
	// corpus.
	fmt.Fprintf(&b, "shard %d %d %s\n", ex.Shard.ID, ex.Shard.Count, strconv.Quote(ex.Shard.Generation))

	// Write-path watermark (format version 5): the compaction generation
	// and the journal sequence already folded into this snapshot.
	fmt.Fprintf(&b, "wal %d %d\n", ex.Generation, ex.WALSeq)

	fmt.Fprintf(&b, "strands %d\n", len(ex.Strands))
	for _, es := range ex.Strands {
		s := es.S
		fmt.Fprintf(&b, "s %d %d %d %d %s\n", es.Count, s.BlockIndex, len(s.Inputs), len(s.Stmts), strconv.Quote(s.ProcName))
		for _, in := range s.Inputs {
			fmt.Fprintf(&b, "i %d %s\n", typeCode(in.Type), strconv.Quote(in.Name))
		}
		for _, st := range s.Stmts {
			fmt.Fprintf(&b, "a %d %s %s\n", typeCode(st.Dst.Type), strconv.Quote(st.Dst.Name), strconv.Quote(st.Rhs.String()))
		}
	}

	fmt.Fprintf(&b, "targets %d\n", len(ex.Targets))
	for _, t := range ex.Targets {
		patched := 0
		if t.Source.Patched {
			patched = 1
		}
		fmt.Fprintf(&b, "t %d %d %d %s %s %s %s %s\n",
			t.NumBlocks, t.NumStrands, patched,
			strconv.Quote(t.Name), strconv.Quote(t.Source.Package), strconv.Quote(t.Source.SourceSym),
			strconv.Quote(t.Source.Toolchain), strconv.Quote(t.Source.OptLevel))
		fmt.Fprintf(&b, "x %d", len(t.StrandIdx))
		for _, idx := range t.StrandIdx {
			fmt.Fprintf(&b, " %d", idx)
		}
		b.WriteByte('\n')
	}

	// Sketch section (format version 2): per-strand MinHash signatures
	// so a load can rebuild the LSH prefilter without recomputing
	// features. Written empty (count 0) when any signature is missing
	// or inconsistent; the loader recomputes in that case.
	cfg := sketch.Config{Bands: ex.Opts.LSHBands, Rows: ex.Opts.LSHRows}.Normalized()
	n := len(ex.Strands)
	for _, es := range ex.Strands {
		if len(es.Sig) != cfg.Len() {
			n = 0
			break
		}
	}
	fmt.Fprintf(&b, "sketch %d %d %d\n", n, cfg.Bands, cfg.Rows)
	for i := 0; i < n; i++ {
		b.WriteString("g")
		for _, v := range ex.Strands[i].Sig {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}

	// Multiplicity section (format version 3): per-target strand
	// multiplicities, written only when they are present and exactly
	// reproduce the per-strand counts (the invariant shard splitting
	// depends on). A database rebuilt from a pre-v3 snapshot carries
	// fabricated all-ones multiplicities, so re-saving it must not
	// persist them as if they were real — it writes a zero count and
	// the loader falls back to the same all-ones default.
	nm := len(ex.Targets)
	multSum := make([]int, len(ex.Strands))
	for _, t := range ex.Targets {
		if t.StrandMult == nil || len(t.StrandMult) != len(t.StrandIdx) {
			nm = 0
			break
		}
		for k, idx := range t.StrandIdx {
			if idx >= 0 && idx < len(multSum) {
				multSum[idx] += t.StrandMult[k]
			}
		}
	}
	if nm > 0 {
		for j, es := range ex.Strands {
			if multSum[j] != es.Count {
				nm = 0
				break
			}
		}
	}
	fmt.Fprintf(&b, "mults %d\n", nm)
	for i := 0; i < nm; i++ {
		t := ex.Targets[i]
		fmt.Fprintf(&b, "m %d", len(t.StrandMult))
		for _, m := range t.StrandMult {
			fmt.Fprintf(&b, " %d", m)
		}
		b.WriteByte('\n')
	}

	// Retrieval section (format version 4): the probe table's band
	// posting slabs with their own checksum, so a load can adopt the
	// table instead of re-sorting it. Written empty (count 0) when the
	// table was never built, or disagrees with the snapshot's strand
	// count or banding; the loader rebuilds in that case (the table is
	// a deterministic function of the strands, so answers match).
	rt := ex.Retrieval
	if rt != nil && (rt.N != len(ex.Strands) || rt.Bands != cfg.Bands || rt.Rows != cfg.Rows) {
		rt = nil
	}
	if rt == nil {
		fmt.Fprintf(&b, "retrieval 0 %d %d 0\n", cfg.Bands, cfg.Rows)
	} else {
		fmt.Fprintf(&b, "retrieval %d %d %d %016x\n", rt.N, rt.Bands, rt.Rows, rt.Checksum)
		fmt.Fprintf(&b, "rd %d", len(rt.BandDir))
		for _, v := range rt.BandDir {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "rk %d", len(rt.BandKeys))
		for _, v := range rt.BandKeys {
			fmt.Fprintf(&b, " %x", v)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "ro %d", len(rt.BandOffs))
		for _, v := range rt.BandOffs {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "ri %d", len(rt.BandIDs))
		for _, v := range rt.BandIDs {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// ---- body decoding ----

type decoder struct {
	lines []string
	pos   int // current line number (1-based for errors)
}

func (d *decoder) next() (string, error) {
	if d.pos >= len(d.lines) {
		return "", fmt.Errorf("index: unexpected end of snapshot at line %d", d.pos+1)
	}
	d.pos++
	return d.lines[d.pos-1], nil
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("index: line %d: %s", d.pos, fmt.Sprintf(format, args...))
}

// fields splits a body line into tokens, decoding %q-quoted tokens
// (which may contain spaces).
func (d *decoder) fields(line string) ([]string, error) {
	var out []string
	for {
		line = strings.TrimLeft(line, " ")
		if line == "" {
			return out, nil
		}
		if line[0] == '"' {
			q, rest, err := quotedPrefix(line)
			if err != nil {
				return nil, d.errf("bad quoted token: %v", err)
			}
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, d.errf("bad quoted token %s: %v", q, err)
			}
			out = append(out, u)
			line = rest
			continue
		}
		i := strings.IndexByte(line, ' ')
		if i < 0 {
			out = append(out, line)
			return out, nil
		}
		out = append(out, line[:i])
		line = line[i:]
	}
}

func quotedPrefix(s string) (quoted, rest string, err error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	return q, s[len(q):], nil
}

func (d *decoder) ints(toks []string) ([]int, error) {
	out := make([]int, len(toks))
	for i, t := range toks {
		n, err := strconv.Atoi(t)
		if err != nil {
			return nil, d.errf("bad integer %q", t)
		}
		out[i] = n
	}
	return out, nil
}

// record reads the next line, checks its tag, and returns its fields
// (tag stripped).
func (d *decoder) record(tag string, minFields int) ([]string, error) {
	line, err := d.next()
	if err != nil {
		return nil, err
	}
	toks, err := d.fields(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 || toks[0] != tag {
		return nil, d.errf("expected %q record, got %q", tag, line)
	}
	if len(toks)-1 < minFields {
		return nil, d.errf("%q record has %d fields, want at least %d", tag, len(toks)-1, minFields)
	}
	return toks[1:], nil
}

func decodeBody(body []byte, version int) (*core.Export, error) {
	lines := strings.Split(string(body), "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	d := &decoder{lines: lines}
	ex := &core.Export{}

	if err := d.decodeOptions(ex); err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := d.decodeShard(ex); err != nil {
			return nil, err
		}
	}
	if version >= 5 {
		if err := d.decodeWAL(ex); err != nil {
			return nil, err
		}
	}
	if err := d.decodeStrands(ex); err != nil {
		return nil, err
	}
	if err := d.decodeTargets(ex); err != nil {
		return nil, err
	}
	if version >= 2 {
		if err := d.decodeSketch(ex); err != nil {
			return nil, err
		}
	}
	if version >= 3 {
		if err := d.decodeMults(ex); err != nil {
			return nil, err
		}
	}
	if version >= 4 {
		if err := d.decodeRetrieval(ex); err != nil {
			return nil, err
		}
	}
	if d.pos != len(d.lines) {
		return nil, d.errf("trailing data after final section")
	}
	return ex, nil
}

// decodeRetrieval reads the version-4 retrieval section. A zero strand
// count means the probe table was not persisted; core.FromExport
// rebuilds it on demand. The decoded table's internal consistency
// (sorted keys, monotonic offsets, id ranges, checksum) is validated by
// sketch.FromTable at adopt time.
func (d *decoder) decodeRetrieval(ex *core.Export) error {
	toks, err := d.record("retrieval", 4)
	if err != nil {
		return err
	}
	nums, err := d.ints(toks[:3])
	if err != nil {
		return err
	}
	n, bands, rows := nums[0], nums[1], nums[2]
	if bands <= 0 || rows <= 0 {
		return d.errf("bad retrieval banding %dx%d", bands, rows)
	}
	if n == 0 {
		return nil
	}
	if n != len(ex.Strands) {
		return d.errf("retrieval section covers %d strands, snapshot has %d", n, len(ex.Strands))
	}
	checksum, err := strconv.ParseUint(toks[3], 16, 64)
	if err != nil {
		return d.errf("bad retrieval checksum %q", toks[3])
	}
	int32List := func(tag string) ([]int32, error) {
		toks, err := d.record(tag, 1)
		if err != nil {
			return nil, err
		}
		vals, err := d.ints(toks)
		if err != nil {
			return nil, err
		}
		if vals[0] != len(vals)-1 {
			return nil, d.errf("%q list has %d entries, header says %d", tag, len(vals)-1, vals[0])
		}
		out := make([]int32, len(vals)-1)
		for i, v := range vals[1:] {
			out[i] = int32(v)
		}
		return out, nil
	}
	tab := sketch.RetrievalTable{N: n, Bands: bands, Rows: rows, Checksum: checksum}
	if tab.BandDir, err = int32List("rd"); err != nil {
		return err
	}
	ktoks, err := d.record("rk", 1)
	if err != nil {
		return err
	}
	kn, err := d.ints(ktoks[:1])
	if err != nil {
		return err
	}
	if kn[0] != len(ktoks)-1 {
		return d.errf("\"rk\" list has %d entries, header says %d", len(ktoks)-1, kn[0])
	}
	tab.BandKeys = make([]uint64, len(ktoks)-1)
	for i, t := range ktoks[1:] {
		v, err := strconv.ParseUint(t, 16, 64)
		if err != nil {
			return d.errf("bad retrieval band key %q", t)
		}
		tab.BandKeys[i] = v
	}
	if tab.BandOffs, err = int32List("ro"); err != nil {
		return err
	}
	if tab.BandIDs, err = int32List("ri"); err != nil {
		return err
	}
	ex.Retrieval = &tab
	return nil
}

// decodeShard reads the version-3 shard identity record.
func (d *decoder) decodeShard(ex *core.Export) error {
	toks, err := d.record("shard", 3)
	if err != nil {
		return err
	}
	nums, err := d.ints(toks[:2])
	if err != nil {
		return err
	}
	ex.Shard = core.ShardInfo{ID: nums[0], Count: nums[1], Generation: toks[2]}
	if ex.Shard.Count < 0 {
		return d.errf("negative shard count %d", ex.Shard.Count)
	}
	if ex.Shard.Sharded() && (ex.Shard.ID < 0 || ex.Shard.ID >= ex.Shard.Count) {
		return d.errf("shard id %d out of range [0,%d)", ex.Shard.ID, ex.Shard.Count)
	}
	return nil
}

// decodeWAL reads the version-5 write-path watermark record: the
// compaction generation and the journal sequence number already folded
// into the snapshot (startup replay skips records at or below it).
func (d *decoder) decodeWAL(ex *core.Export) error {
	toks, err := d.record("wal", 2)
	if err != nil {
		return err
	}
	gen, err := strconv.ParseUint(toks[0], 10, 64)
	if err != nil {
		return d.errf("bad wal generation %q", toks[0])
	}
	seq, err := strconv.ParseUint(toks[1], 10, 64)
	if err != nil {
		return d.errf("bad wal sequence %q", toks[1])
	}
	ex.Generation, ex.WALSeq = gen, seq
	return nil
}

// decodeMults reads the version-3 multiplicity section. A zero target
// count means multiplicities were not persisted; core.FromExport
// defaults them to 1.
func (d *decoder) decodeMults(ex *core.Export) error {
	toks, err := d.record("mults", 1)
	if err != nil {
		return err
	}
	nums, err := d.ints(toks[:1])
	if err != nil {
		return err
	}
	n := nums[0]
	if n != 0 && n != len(ex.Targets) {
		return d.errf("mults section has %d records for %d targets", n, len(ex.Targets))
	}
	for i := 0; i < n; i++ {
		mtoks, err := d.record("m", 1)
		if err != nil {
			return err
		}
		vals, err := d.ints(mtoks)
		if err != nil {
			return err
		}
		if vals[0] != len(vals)-1 {
			return d.errf("target %d: multiplicity list has %d entries, header says %d", i, len(vals)-1, vals[0])
		}
		if len(vals)-1 != len(ex.Targets[i].StrandIdx) {
			return d.errf("target %d: %d multiplicities for %d strand indices", i, len(vals)-1, len(ex.Targets[i].StrandIdx))
		}
		ex.Targets[i].StrandMult = vals[1:]
	}
	return nil
}

// decodeSketch reads the version-2 sketch section. A zero strand count
// means signatures were not persisted; core.FromExport recomputes them.
func (d *decoder) decodeSketch(ex *core.Export) error {
	toks, err := d.record("sketch", 3)
	if err != nil {
		return err
	}
	nums, err := d.ints(toks[:3])
	if err != nil {
		return err
	}
	n, bands, rows := nums[0], nums[1], nums[2]
	if n != 0 && n != len(ex.Strands) {
		return d.errf("sketch section has %d signatures for %d strands", n, len(ex.Strands))
	}
	if bands <= 0 || rows <= 0 {
		return d.errf("bad sketch geometry %dx%d", bands, rows)
	}
	want := bands * rows
	for i := 0; i < n; i++ {
		gtoks, err := d.record("g", want)
		if err != nil {
			return err
		}
		if len(gtoks) != want {
			return d.errf("signature %d has %d values, want %d", i, len(gtoks), want)
		}
		sig := make(sketch.Signature, want)
		for k, t := range gtoks {
			v, err := strconv.ParseUint(t, 10, 32)
			if err != nil {
				return d.errf("bad signature value %q", t)
			}
			sig[k] = uint32(v)
		}
		ex.Strands[i].Sig = sig
	}
	return nil
}

func (d *decoder) decodeOptions(ex *core.Export) error {
	toks, err := d.record("options", 1)
	if err != nil {
		return err
	}
	for _, kv := range toks {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return d.errf("bad option %q", kv)
		}
		var ierr error
		atoi := func() int {
			n, err := strconv.Atoi(val)
			if err != nil {
				ierr = err
			}
			return n
		}
		atof := func() float64 {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				ierr = err
			}
			return f
		}
		switch key {
		case "workers":
			ex.Opts.Workers = atoi()
		case "sigmoidk":
			ex.Opts.SigmoidK = atof()
		case "pathlen":
			ex.Opts.PathLen = atoi()
		case "pathmaxblocks":
			ex.Opts.PathMaxBlocks = atoi()
		case "cachepairs":
			ex.Opts.VCPCachePairs = atoi()
		case "vcpsamples":
			ex.Opts.VCP.Samples = atoi()
		case "vcpminvars":
			ex.Opts.VCP.MinVars = atoi()
		case "vcpsizeratio":
			ex.Opts.VCP.SizeRatio = atof()
		case "vcpmaxcorr":
			ex.Opts.VCP.MaxCorrespondences = atoi()
		case "prefilter":
			ex.Opts.Prefilter = val
		case "lshbands":
			ex.Opts.LSHBands = atoi()
		case "lshrows":
			ex.Opts.LSHRows = atoi()
		case "lshmincont":
			ex.Opts.LSHMinContainment = atof()
		case "kernel":
			ex.Opts.VCP.Kernel = val
		case "retrieval":
			ex.Opts.Retrieval = val
		case "retrmaxdelta":
			ex.Opts.RetrievalMaxDelta = atoi()
		case "gammabatch":
			ex.Opts.VCP.GammaBatch = atoi()
		default:
			// Unknown keys are ignored so minor option additions do not
			// invalidate old readers within a format version.
		}
		if ierr != nil {
			return d.errf("bad option value %q: %v", kv, ierr)
		}
	}
	return nil
}

func (d *decoder) decodeStrands(ex *core.Export) error {
	toks, err := d.record("strands", 1)
	if err != nil {
		return err
	}
	counts, err := d.ints(toks[:1])
	if err != nil {
		return err
	}
	n := counts[0]
	if n < 0 {
		return d.errf("negative strand count %d", n)
	}
	ex.Strands = make([]core.ExportStrand, 0, n)
	for si := 0; si < n; si++ {
		toks, err := d.record("s", 5)
		if err != nil {
			return err
		}
		nums, err := d.ints(toks[:4])
		if err != nil {
			return err
		}
		count, blockIdx, nIn, nSt := nums[0], nums[1], nums[2], nums[3]
		if nIn < 0 || nSt < 0 {
			return d.errf("negative section size in strand %d", si)
		}
		s := &strand.Strand{ProcName: toks[4], BlockIndex: blockIdx}

		// symtab types variable references in statement right-hand sides:
		// in SSA, every reference is an input or an earlier definition.
		symtab := make(map[string]ivl.Type, nIn+nSt)
		for k := 0; k < nIn; k++ {
			toks, err := d.record("i", 2)
			if err != nil {
				return err
			}
			tc, err := d.ints(toks[:1])
			if err != nil {
				return err
			}
			typ, err := codeType(tc[0])
			if err != nil {
				return d.errf("%v", err)
			}
			v := ivl.Var{Name: toks[1], Type: typ}
			s.Inputs = append(s.Inputs, v)
			symtab[v.Name] = v.Type
		}
		for k := 0; k < nSt; k++ {
			toks, err := d.record("a", 3)
			if err != nil {
				return err
			}
			tc, err := d.ints(toks[:1])
			if err != nil {
				return err
			}
			typ, err := codeType(tc[0])
			if err != nil {
				return d.errf("%v", err)
			}
			rhs, err := ivl.ParseExpr(toks[2])
			if err != nil {
				return d.errf("strand %d stmt %d: %v", si, k, err)
			}
			rhs = ivl.Rename(rhs, func(v ivl.Var) ivl.Var {
				if t, ok := symtab[v.Name]; ok {
					v.Type = t
				}
				return v
			})
			dst := ivl.Var{Name: toks[1], Type: typ}
			s.Stmts = append(s.Stmts, ivl.Assign(dst, rhs))
			symtab[dst.Name] = dst.Type
		}
		ex.Strands = append(ex.Strands, core.ExportStrand{S: s, Count: count})
	}
	return nil
}

func (d *decoder) decodeTargets(ex *core.Export) error {
	toks, err := d.record("targets", 1)
	if err != nil {
		return err
	}
	counts, err := d.ints(toks[:1])
	if err != nil {
		return err
	}
	n := counts[0]
	if n < 0 {
		return d.errf("negative target count %d", n)
	}
	ex.Targets = make([]core.ExportTarget, 0, n)
	for ti := 0; ti < n; ti++ {
		toks, err := d.record("t", 8)
		if err != nil {
			return err
		}
		nums, err := d.ints(toks[:3])
		if err != nil {
			return err
		}
		et := core.ExportTarget{
			Name:       toks[3],
			NumBlocks:  nums[0],
			NumStrands: nums[1],
			Source: asm.Provenance{
				Package:   toks[4],
				SourceSym: toks[5],
				Toolchain: toks[6],
				OptLevel:  toks[7],
				Patched:   nums[2] != 0,
			},
		}
		xtoks, err := d.record("x", 1)
		if err != nil {
			return err
		}
		idx, err := d.ints(xtoks)
		if err != nil {
			return err
		}
		if idx[0] != len(idx)-1 {
			return d.errf("target %d: strand index list has %d entries, header says %d", ti, len(idx)-1, idx[0])
		}
		et.StrandIdx = idx[1:]
		ex.Targets = append(ex.Targets, et)
	}
	return nil
}
