// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (§5–6): Table 1 (the eight CVE
// searches under S-VCP / S-LOG / Esh), Table 2 (TRACY vs Esh across
// problem aspects), Table 3 (BinDiff), Figure 5 (the Heartbleed GES bar
// list), Figure 6 (the 40×40 all-vs-all heat map), the §6.2 common-strand
// census, and the §5.5 heuristic ablations.
//
// Every experiment takes a Config whose Scale selects corpus size: tests
// run Small, the esheval command and the benchmarks run Full (near the
// paper's 1500-procedure database).
package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/rocauc"
	"repro/internal/stats"
	"repro/internal/vcp"
)

// Scale selects the corpus size.
type Scale int

// Scales.
const (
	// Small: three toolchains (one per vendor), core decoys, no
	// synthetic variants. Minutes of CPU; used by tests.
	Small Scale = iota
	// Medium: five toolchains, all decoys, some synthetic variants.
	Medium
	// Full: all seven toolchains, all decoys, synthetic variants sized
	// to approach the paper's 1500-procedure database.
	Full
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "full"
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Workers int
	// VCP overrides the verifier configuration (zero = paper defaults).
	VCP vcp.Config
}

// Toolchains returns the scale's toolchain set. The query toolchain
// (clang-3.5, per the paper's experiment #1) is always present.
func (c Config) Toolchains() []compile.Toolchain {
	all := compile.Toolchains()
	switch c.Scale {
	case Small:
		return pick(all, "gcc-4.9", "clang-3.5", "icc-15.0.1")
	case Medium:
		return pick(all, "gcc-4.6", "gcc-4.9", "clang-3.4", "clang-3.5", "icc-15.0.1")
	default:
		return all
	}
}

func pick(all []compile.Toolchain, names ...string) []compile.Toolchain {
	var out []compile.Toolchain
	for _, n := range names {
		for _, tc := range all {
			if tc.Name() == n {
				out = append(out, tc)
			}
		}
	}
	return out
}

// SynthVariants returns the number of generated decoy packages.
func (c Config) SynthVariants() int {
	switch c.Scale {
	case Small:
		return 0
	case Medium:
		return 8
	default:
		return 40
	}
}

// QueryToolchain is the toolchain the paper compiles its queries with in
// experiment #1 (CLang 3.5).
func (c Config) QueryToolchain() compile.Toolchain {
	tc, _ := compile.ByName("clang-3.5")
	return tc
}

// BuildCorpus compiles the full test-bed for this configuration.
func (c Config) BuildCorpus() ([]*asm.Proc, error) {
	return corpus.Build(corpus.BuildConfig{
		Toolchains:     c.Toolchains(),
		IncludePatched: true,
		SynthVariants:  c.SynthVariants(),
	})
}

// NewDB builds an Esh engine database over the given targets.
func (c Config) NewDB(targets []*asm.Proc) (*core.DB, error) {
	db := core.NewDB(core.Options{VCP: c.VCP, Workers: c.Workers})
	for _, p := range targets {
		if err := db.AddTarget(p); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MethodEval is the per-method triple the paper's Table 1 reports.
type MethodEval struct {
	FP   int
	ROC  float64
	CROC float64
}

// Evaluate converts a ranked report into Table-1 metrics for one method,
// with isPositive supplying ground truth.
func Evaluate(rep *core.Report, m stats.Method, isPositive func(*core.Target) bool) MethodEval {
	var samples []rocauc.Sample
	for _, ts := range rep.Results {
		samples = append(samples, rocauc.Sample{
			Score:    ts.Score(m),
			Positive: isPositive(ts.Target),
		})
	}
	return MethodEval{
		FP:   rocauc.FalsePositives(samples),
		ROC:  rocauc.ROC(samples),
		CROC: rocauc.CROC(samples, rocauc.DefaultAlpha),
	}
}

// Methods lists the sub-method decomposition in Table 1 column order.
func Methods() []stats.Method {
	return []stats.Method{stats.SVCP, stats.SLOG, stats.Esh}
}

// fmtEval renders a MethodEval the way Table 1 prints it.
func fmtEval(e MethodEval) string {
	return fmt.Sprintf("FP=%-4d ROC=%.3f CROC=%.3f", e.FP, e.ROC, e.CROC)
}
