package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stats"
)

// Table1Row is one experiment of the paper's Table 1: one vulnerable
// query searched in the corpus, evaluated under the three sub-methods.
type Table1Row struct {
	Vuln       corpus.Vuln
	NumBB      int
	NumStrands int
	PerMethod  map[stats.Method]MethodEval
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
	// DBSize and UniqueStrands describe the target database.
	DBSize        int
	UniqueStrands int
}

// Table1 reproduces the paper's Table 1. For each of the eight CVEs the
// query is the vulnerable procedure compiled with the query toolchain;
// true positives are every other compilation of the same procedure
// (other toolchains and the patched source, as in Figure 5); everything
// else in the corpus is a negative.
func Table1(cfg Config) (*Table1Result, error) {
	targets, err := cfg.BuildCorpus()
	if err != nil {
		return nil, err
	}
	db, err := cfg.NewDB(targets)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{DBSize: db.NumTargets(), UniqueStrands: db.NumUniqueStrands()}

	for _, v := range corpus.Vulns() {
		q, err := corpus.CompileVuln(v, cfg.QueryToolchain(), false)
		if err != nil {
			return nil, err
		}
		rep, err := db.Query(q)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Vuln:       v,
			NumBB:      rep.NumBlocks,
			NumStrands: rep.NumStrands,
			PerMethod:  map[stats.Method]MethodEval{},
		}
		isPos := func(t *core.Target) bool { return t.Source.SourceSym == v.FuncName }
		for _, m := range Methods() {
			row.PerMethod[m] = Evaluate(rep, m, isPos)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — vulnerability search (%d targets, %d unique strands)\n",
		r.DBSize, r.UniqueStrands)
	fmt.Fprintf(&b, "%-2s %-16s %-10s %4s %8s | %-30s | %-30s | %-30s\n",
		"#", "Alias", "CVE", "#BB", "#Strands", "S-VCP", "S-LOG", "Esh")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-2d %-16s %-10s %4d %8d | %-30s | %-30s | %-30s\n",
			row.Vuln.ID, row.Vuln.Alias, row.Vuln.CVE, row.NumBB, row.NumStrands,
			fmtEval(row.PerMethod[stats.SVCP]),
			fmtEval(row.PerMethod[stats.SLOG]),
			fmtEval(row.PerMethod[stats.Esh]))
	}
	return b.String()
}
