package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/bindiff"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/minic"
)

// Table3Row is BinDiff's verdict for one vulnerable procedure.
type Table3Row struct {
	Alias      string
	Matched    bool
	Similarity float64
	Confidence float64
}

// Table3Result is the paper's Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 reproduces the BinDiff evaluation: for each CVE, the query
// library (the vulnerable package plus companion decoys, compiled with
// gcc-4.9) is diffed against the same library compiled with a different
// vendor (icc-15.0.1) from the patched source, and we record whether the
// whole-library matcher pairs the vulnerable procedure correctly.
func Table3(cfg Config) (*Table3Result, error) {
	gcc, _ := compile.ByName("gcc-4.9")
	icc, _ := compile.ByName("icc-15.0.1")

	buildLib := func(v corpus.Vuln, tc compile.Toolchain, patched bool) ([]*bindiff.Features, error) {
		src := v.Src
		if patched {
			src = v.Patched
		}
		var lib []*bindiff.Features
		add := func(pkg, source string) error {
			prog, err := minic.Parse(source)
			if err != nil {
				return err
			}
			procs, err := compile.CompileAll(prog, tc, compile.O2())
			if err != nil {
				return err
			}
			for _, p := range procs {
				p.Source = asm.Provenance{Package: pkg, SourceSym: p.Name, Toolchain: tc.Name(), Patched: patched}
				f, err := bindiff.Extract(p)
				if err != nil {
					return err
				}
				lib = append(lib, f)
			}
			return nil
		}
		if err := add(v.Package, src); err != nil {
			return nil, err
		}
		// Companion procedures make the library a realistic diff target;
		// the generated variants supply the many similar-shaped loop
		// procedures real libraries are full of.
		for _, d := range corpus.Decoys() {
			if err := add(d.Name, d.Src); err != nil {
				return nil, err
			}
		}
		for _, d := range corpus.GeneratedVariants(24) {
			if err := add(d.Name, d.Src); err != nil {
				return nil, err
			}
		}
		return lib, nil
	}

	res := &Table3Result{}
	for _, v := range corpus.Vulns() {
		qlib, err := buildLib(v, gcc, false)
		if err != nil {
			return nil, err
		}
		tlib, err := buildLib(v, icc, true)
		if err != nil {
			return nil, err
		}
		matches := bindiff.Diff(qlib, tlib)
		row := Table3Row{Alias: v.Alias}
		for _, m := range matches {
			if m.Query.Source.SourceSym == v.FuncName {
				if m.Target.Source.SourceSym == v.FuncName {
					row.Matched = true
					row.Similarity = m.Similarity
					row.Confidence = m.Confidence
				}
				break
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — BinDiff on the Table-1 procedures (gcc-4.9 vs icc-15.0.1 + patch)\n")
	fmt.Fprintf(&b, "%-16s %-9s %-11s %-10s\n", "Alias", "Matched?", "Similarity", "Confidence")
	for _, row := range r.Rows {
		if row.Matched {
			fmt.Fprintf(&b, "%-16s %-9s %-11.2f %-10.2f\n", row.Alias, "yes", row.Similarity, row.Confidence)
		} else {
			fmt.Fprintf(&b, "%-16s %-9s %-11s %-10s\n", row.Alias, "no", "-", "-")
		}
	}
	return b.String()
}
