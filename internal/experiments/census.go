package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/lift"
	"repro/internal/strand"
	"repro/internal/vcp"
)

// CensusEntry is one common strand found in the corpus.
type CensusEntry struct {
	Count   int
	Targets int // number of distinct procedures containing it
	Sample  string
}

// CensusResult reproduces the paper's §6.2 analysis of experiment #5:
// the most common strands in the corpus are compiler idioms (the paper
// found push-REG prologue sequences), which is exactly why Pr(sq|H0)
// amplification is needed.
type CensusResult struct {
	TotalStrands  int
	UniqueStrands int
	Top           []CensusEntry
}

// Census counts canonical strand frequencies over the corpus.
func Census(c Config, topN int) (*CensusResult, error) {
	targets, err := c.BuildCorpus()
	if err != nil {
		return nil, err
	}
	minVars := c.VCP.MinVars
	if minVars <= 0 {
		minVars = vcp.Default().MinVars
	}
	counts := map[string]int{}
	inProcs := map[string]int{}
	samples := map[string]string{}
	total := 0
	for _, p := range targets {
		g, err := cfg.Build(p)
		if err != nil {
			return nil, err
		}
		lp, err := lift.LiftProc(g)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, s := range strand.FromProc(lp) {
			if s.NumVars() < minVars {
				continue
			}
			key := s.CanonicalKey()
			counts[key]++
			total++
			if !seen[key] {
				seen[key] = true
				inProcs[key]++
			}
			if _, ok := samples[key]; !ok {
				samples[key] = s.String()
			}
		}
	}
	res := &CensusResult{TotalStrands: total, UniqueStrands: len(counts)}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if topN > len(keys) {
		topN = len(keys)
	}
	for _, k := range keys[:topN] {
		res.Top = append(res.Top, CensusEntry{
			Count:   counts[k],
			Targets: inProcs[k],
			Sample:  samples[k],
		})
	}
	return res, nil
}

// String renders the census.
func (r *CensusResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.2 census — %d strands, %d unique\n", r.TotalStrands, r.UniqueStrands)
	for i, e := range r.Top {
		fmt.Fprintf(&b, "#%d ×%d (in %d procedures):\n%s\n", i+1, e.Count, e.Targets, indent(e.Sample))
	}
	return b.String()
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}
