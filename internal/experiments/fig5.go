package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/rocauc"
)

// Fig5Bar is one bar of Figure 5: a target procedure's normalized GES.
type Fig5Bar struct {
	Label        string
	GES          float64 // normalized to the top score
	TruePositive bool
}

// Fig5Result reproduces Figure 5's Heartbleed search.
type Fig5Result struct {
	Bars []Fig5Bar // sorted by descending GES
	// Gap is the normalized GES distance between the lowest true
	// positive and the highest decoy (the paper reports 0.419 vs 0.333).
	Gap        float64
	LastTP     float64
	BestDecoy  float64
	ROC, CROC  float64
	QueryLabel string
}

// Fig5 runs experiment #1: the Heartbleed procedure from openssl-1.0.1f
// compiled with clang-3.5 queried against all its compilations and
// versions plus the decoy corpus.
func Fig5(cfg Config) (*Fig5Result, error) {
	targets, err := cfg.BuildCorpus()
	if err != nil {
		return nil, err
	}
	db, err := cfg.NewDB(targets)
	if err != nil {
		return nil, err
	}
	v := corpus.Vulns()[0]
	q, err := corpus.CompileVuln(v, cfg.QueryToolchain(), false)
	if err != nil {
		return nil, err
	}
	rep, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	return fig5FromReport(rep, v.FuncName, q.Name)
}

func fig5FromReport(rep *core.Report, posSym, queryLabel string) (*Fig5Result, error) {
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("fig5: empty report")
	}
	res := &Fig5Result{QueryLabel: queryLabel}
	top := rep.Results[0].GES
	if top <= 0 {
		top = 1
	}
	var samples []rocauc.Sample
	lastTP, bestDecoy := 1.0, 0.0
	for _, ts := range rep.Results {
		pos := ts.Target.Source.SourceSym == posSym
		norm := ts.GES / top
		if norm < 0 {
			norm = 0
		}
		res.Bars = append(res.Bars, Fig5Bar{
			Label:        ts.Target.Name,
			GES:          norm,
			TruePositive: pos,
		})
		if pos && norm < lastTP {
			lastTP = norm
		}
		if !pos && norm > bestDecoy {
			bestDecoy = norm
		}
		samples = append(samples, rocauc.Sample{Score: ts.GES, Positive: pos})
	}
	res.LastTP = lastTP
	res.BestDecoy = bestDecoy
	res.Gap = lastTP - bestDecoy
	res.ROC = rocauc.ROC(samples)
	res.CROC = rocauc.CROC(samples, rocauc.DefaultAlpha)
	return res, nil
}

// String renders a text version of the bar chart (top 25 bars).
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — GES ranking for query %s (ROC=%.3f CROC=%.3f)\n",
		r.QueryLabel, r.ROC, r.CROC)
	fmt.Fprintf(&b, "gap between last true positive (%.3f) and best decoy (%.3f): %.3f\n",
		r.LastTP, r.BestDecoy, r.Gap)
	n := len(r.Bars)
	if n > 25 {
		n = 25
	}
	for _, bar := range r.Bars[:n] {
		mark := " "
		if bar.TruePositive {
			mark = "*"
		}
		width := int(bar.GES * 50)
		if width < 0 {
			width = 0
		}
		fmt.Fprintf(&b, "%s %-44s %6.3f %s\n", mark, bar.Label, bar.GES, strings.Repeat("#", width))
	}
	return b.String()
}
