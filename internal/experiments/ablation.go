package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stats"
)

// AblationRow is one setting of one ablated design choice, evaluated on
// the Heartbleed experiment.
type AblationRow struct {
	Knob    string
	Setting string
	ROC     float64
	CROC    float64
	FP      int
	Elapsed time.Duration
}

// AblationResult collects the §5.5 / DESIGN.md ablations: the sigmoid
// steepness k, the minimum-strand-size filter, and the size-ratio
// window.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation evaluates each design knob on experiment #1's query.
func Ablation(cfg Config) (*AblationResult, error) {
	targets, err := cfg.BuildCorpus()
	if err != nil {
		return nil, err
	}
	v := corpus.Vulns()[0]
	q, err := corpus.CompileVuln(v, cfg.QueryToolchain(), false)
	if err != nil {
		return nil, err
	}

	res := &AblationResult{}
	run := func(knob, setting string, opts core.Options) error {
		start := time.Now()
		db := core.NewDB(opts)
		for _, p := range targets {
			if err := db.AddTarget(p); err != nil {
				return err
			}
		}
		rep, err := db.Query(q)
		if err != nil {
			return err
		}
		ev := Evaluate(rep, stats.Esh, func(t *core.Target) bool {
			return t.Source.SourceSym == v.FuncName
		})
		res.Rows = append(res.Rows, AblationRow{
			Knob: knob, Setting: setting,
			ROC: ev.ROC, CROC: ev.CROC, FP: ev.FP,
			Elapsed: time.Since(start),
		})
		return nil
	}

	// Sigmoid steepness (paper §3.3.1 chose k = 10 experimentally).
	for _, k := range []float64{1, 5, 10, 20} {
		opts := core.Options{VCP: cfg.VCP, Workers: cfg.Workers, SigmoidK: k}
		if err := run("sigmoid-k", fmt.Sprintf("k=%g", k), opts); err != nil {
			return nil, err
		}
	}
	// Minimum strand size (paper §5.5 uses 5).
	for _, mv := range []int{2, 5, 8} {
		vc := cfg.VCP
		vc.MinVars = mv
		opts := core.Options{VCP: vc, Workers: cfg.Workers}
		if err := run("min-strand-vars", fmt.Sprintf("min=%d", mv), opts); err != nil {
			return nil, err
		}
	}
	// Size-ratio window (paper §5.5 uses 0.5; 0.01 ≈ disabled).
	for _, ratio := range []float64{0.01, 0.5, 0.8} {
		vc := cfg.VCP
		vc.SizeRatio = ratio
		opts := core.Options{VCP: vc, Workers: cfg.Workers}
		if err := run("size-ratio", fmt.Sprintf("ratio=%.2f", ratio), opts); err != nil {
			return nil, err
		}
	}
	// Path strands (the §6.6 extension for small procedures).
	for _, pl := range []int{0, 2} {
		opts := core.Options{VCP: cfg.VCP, Workers: cfg.Workers, PathLen: pl, PathMaxBlocks: 20}
		if err := run("path-strands", fmt.Sprintf("k=%d", pl), opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablations — Esh on experiment #1 under varied design choices\n")
	fmt.Fprintf(&b, "%-16s %-12s %8s %8s %5s %10s\n", "knob", "setting", "ROC", "CROC", "FP", "time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-12s %8.3f %8.3f %5d %10s\n",
			row.Knob, row.Setting, row.ROC, row.CROC, row.FP, row.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
