package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minic"
	"repro/internal/rocauc"
)

// Fig6Result is the all-vs-all experiment of Figure 6: a GES matrix over
// procedures drawn from several packages, each in multiple compilations.
type Fig6Result struct {
	Labels  []string    // row/column labels (query = row, target = column)
	Sources []string    // source symbol per index (ground-truth grouping)
	Matrix  [][]float64 // GES[i][j] = GES(query i | target j)
	AvgROC  float64
	AvgCROC float64
}

// fig6Queries selects the paper's named procedures with their
// compilation counts: ftp_syst from wget-1.8 in 6 compilations,
// ff_rv34_decode_init_thread_copy from ffmpeg-2.4.6 in 7, and Coreutils
// procedures in 3 each — 40 in total at Full scale.
func fig6Queries(cfg Config) []struct {
	pkg, fn string
	count   int
} {
	all := []struct {
		pkg, fn string
		count   int
	}{
		{"wget-1.8/ftp", "ftp_syst", 6},
		{"ffmpeg-2.4.6/rv34", "ff_rv34_decode_init_thread_copy", 7},
		{"coreutils-8.23/parse", "parse_integer", 3},
		{"coreutils-8.23/stat", "dev_ino_compare", 3},
		{"coreutils-8.23/stat", "default_format", 3},
		{"coreutils-8.23/stat", "print_stat", 3},
		{"coreutils-8.23/stat", "cached_umask", 3},
		{"coreutils-8.23/ln", "create_hard_link", 3},
		{"coreutils-8.23/od", "i_write", 3},
		{"coreutils-8.23/sort", "compare_nodes", 3},
		{"coreutils-8.23/cksum", "crc_update", 3},
	}
	if cfg.Scale == Small {
		// Trim compilation counts to the scale's toolchains (3).
		for i := range all {
			if all[i].count > 3 {
				all[i].count = 3
			}
		}
		all = all[:6]
	}
	return all
}

// Fig6 runs the all-vs-all experiment.
func Fig6(cfg Config) (*Fig6Result, error) {
	decoyByName := map[string]string{}
	for _, d := range corpus.Decoys() {
		decoyByName[d.Name] = d.Src
	}
	tcs := compile.Toolchains()

	var procs []*asm.Proc
	for _, q := range fig6Queries(cfg) {
		src, ok := decoyByName[q.pkg]
		if !ok {
			return nil, fmt.Errorf("fig6: unknown package %s", q.pkg)
		}
		prog, err := minic.Parse(src)
		if err != nil {
			return nil, err
		}
		for i := 0; i < q.count && i < len(tcs); i++ {
			p, err := compile.Compile(prog, q.fn, tcs[i], compile.O2())
			if err != nil {
				return nil, err
			}
			p.Source = asm.Provenance{Package: q.pkg, SourceSym: q.fn, Toolchain: tcs[i].Name()}
			p.Name = q.fn + "@" + tcs[i].Name()
			procs = append(procs, p)
		}
	}

	db := core.NewDB(core.Options{VCP: cfg.VCP, Workers: cfg.Workers})
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			return nil, err
		}
	}

	res := &Fig6Result{}
	for _, p := range procs {
		res.Labels = append(res.Labels, p.Name)
		res.Sources = append(res.Sources, p.Source.SourceSym)
	}
	res.Matrix = make([][]float64, len(procs))

	sumROC, sumCROC := 0.0, 0.0
	for i, p := range procs {
		rep, err := db.Query(p)
		if err != nil {
			return nil, err
		}
		// Results come sorted; re-index by target order.
		ges := map[string]float64{}
		for _, ts := range rep.Results {
			ges[ts.Target.Name] = ts.GES
		}
		res.Matrix[i] = make([]float64, len(procs))
		var samples []rocauc.Sample
		for j, t := range procs {
			res.Matrix[i][j] = ges[t.Name]
			if j == i {
				continue // the query itself is excluded from scoring
			}
			samples = append(samples, rocauc.Sample{
				Score:    ges[t.Name],
				Positive: t.Source.SourceSym == p.Source.SourceSym,
			})
		}
		sumROC += rocauc.ROC(samples)
		sumCROC += rocauc.CROC(samples, rocauc.DefaultAlpha)
	}
	res.AvgROC = sumROC / float64(len(procs))
	res.AvgCROC = sumCROC / float64(len(procs))
	return res, nil
}

// String renders an ASCII heat map (GES normalized per row).
func (r *Fig6Result) String() string {
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — all-vs-all GES heat map (%d×%d), avg ROC=%.3f CROC=%.3f\n",
		len(r.Labels), len(r.Labels), r.AvgROC, r.AvgCROC)
	for i, row := range r.Matrix {
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for _, v := range row {
			idx := int((v - lo) / span * float64(len(shades)-1))
			b.WriteByte(shades[idx])
		}
		fmt.Fprintf(&b, "  %s\n", r.Labels[i])
	}
	return b.String()
}

// CSV renders the matrix with labels for external plotting.
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("query\\target")
	for _, l := range r.Labels {
		b.WriteString("," + l)
	}
	b.WriteByte('\n')
	for i, row := range r.Matrix {
		b.WriteString(r.Labels[i])
		for _, v := range row {
			fmt.Fprintf(&b, ",%.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
