package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minic"
	"repro/internal/rocauc"
	"repro/internal/stats"
)

// CrossOptRow is one query configuration of the cross-optimization-level
// experiment.
type CrossOptRow struct {
	Query     string // "O2 query vs O0 targets" etc.
	FP        int
	ROC, CROC float64
}

// CrossOptResult extends the paper's three problem aspects (§5.3) with a
// fourth the paper's corpus only brushes against (its packages default to
// -O2 or -O3): searching across optimization levels. -O0 code spills
// every local and selects naive instructions, which exercises the
// lifter's frame-slot inputs harder than any cross-vendor pair.
type CrossOptResult struct {
	Rows []CrossOptRow
}

// CrossOpt queries the Heartbleed procedure across optimization levels:
// the -O2 query against a database whose true positives are -O0 builds,
// and vice versa. Decoys are compiled at the matching level.
func CrossOpt(cfg Config) (*CrossOptResult, error) {
	v := corpus.Vulns()[0]
	res := &CrossOptResult{}

	build := func(tc compile.Toolchain, opt compile.Options) (*asm.Proc, error) {
		prog, err := minic.Parse(v.Src)
		if err != nil {
			return nil, err
		}
		p, err := compile.Compile(prog, v.FuncName, tc, opt)
		if err != nil {
			return nil, err
		}
		p.Source = asm.Provenance{
			Package: v.Package, SourceSym: v.FuncName,
			Toolchain: tc.Name(), OptLevel: fmt.Sprintf("-O%d", opt.OptLevel),
		}
		p.Name = p.Source.Key()
		return p, nil
	}

	run := func(queryOpt, targetOpt compile.Options, label string) error {
		db := core.NewDB(core.Options{VCP: cfg.VCP, Workers: cfg.Workers})
		for _, tc := range cfg.Toolchains() {
			p, err := build(tc, targetOpt)
			if err != nil {
				return err
			}
			if err := db.AddTarget(p); err != nil {
				return err
			}
		}
		for _, d := range corpus.Decoys()[:8] {
			prog, err := minic.Parse(d.Src)
			if err != nil {
				return err
			}
			for _, tc := range cfg.Toolchains() {
				procs, err := compile.CompileAll(prog, tc, targetOpt)
				if err != nil {
					return err
				}
				for _, p := range procs {
					p.Source = asm.Provenance{Package: d.Name, SourceSym: p.Name, Toolchain: tc.Name()}
					p.Name = p.Source.Key() + "@" + tc.Name()
					if err := db.AddTarget(p); err != nil {
						return err
					}
				}
			}
		}
		q, err := build(cfg.QueryToolchain(), queryOpt)
		if err != nil {
			return err
		}
		rep, err := db.Query(q)
		if err != nil {
			return err
		}
		var samples []rocauc.Sample
		for _, ts := range rep.Results {
			samples = append(samples, rocauc.Sample{
				Score:    ts.Score(stats.Esh),
				Positive: ts.Target.Source.SourceSym == v.FuncName,
			})
		}
		res.Rows = append(res.Rows, CrossOptRow{
			Query: label,
			FP:    rocauc.FalsePositives(samples),
			ROC:   rocauc.ROC(samples),
			CROC:  rocauc.CROC(samples, rocauc.DefaultAlpha),
		})
		return nil
	}

	o0 := compile.Options{OptLevel: 0}
	o1 := compile.Options{OptLevel: 1}
	o2 := compile.O2()
	if err := run(o2, o2, "O2 query vs O2 targets (baseline)"); err != nil {
		return nil, err
	}
	if err := run(o2, o1, "O2 query vs O1 targets"); err != nil {
		return nil, err
	}
	if err := run(o1, o2, "O1 query vs O2 targets"); err != nil {
		return nil, err
	}
	if err := run(o2, o0, "O2 query vs O0 targets"); err != nil {
		return nil, err
	}
	if err := run(o0, o2, "O0 query vs O2 targets"); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the table.
func (r *CrossOptResult) String() string {
	var b strings.Builder
	b.WriteString("Cross-optimization-level search (Esh, Heartbleed query)\n")
	fmt.Fprintf(&b, "%-36s %5s %8s %8s\n", "configuration", "FP", "ROC", "CROC")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %5d %8.3f %8.3f\n", row.Query, row.FP, row.ROC, row.CROC)
	}
	return b.String()
}
