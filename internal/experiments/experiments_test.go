package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// The experiment tests run at Small scale and assert the *shapes* the
// paper reports, not absolute numbers: who wins, roughly by how much,
// and where methods break down. They are skipped under -short.

func small() Config { return Config{Scale: Small} }

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	if res.DBSize < 100 {
		t.Errorf("DB suspiciously small: %d", res.DBSize)
	}

	eshBeatsSlog, eshGoodROC := 0, 0
	var sumEsh, sumSlog, sumSvcp float64
	for _, row := range res.Rows {
		esh := row.PerMethod[stats.Esh]
		slog := row.PerMethod[stats.SLOG]
		svcp := row.PerMethod[stats.SVCP]
		if row.NumBB == 0 || row.NumStrands == 0 {
			t.Errorf("%s: empty decomposition", row.Vuln.Alias)
		}
		if esh.ROC >= slog.ROC {
			eshBeatsSlog++
		}
		if esh.ROC >= 0.9 {
			eshGoodROC++
		}
		sumEsh += esh.CROC
		sumSlog += slog.CROC
		sumSvcp += svcp.CROC
	}
	// Paper shape: the full method dominates the S-LOG layer and is
	// accurate across the board.
	if eshBeatsSlog < 6 {
		t.Errorf("Esh ROC >= S-LOG ROC in only %d/8 experiments\n%s", eshBeatsSlog, res)
	}
	if eshGoodROC < 7 {
		t.Errorf("Esh ROC >= 0.9 in only %d/8 experiments\n%s", eshGoodROC, res)
	}
	if sumEsh <= sumSlog {
		t.Errorf("mean Esh CROC (%v) not above S-LOG (%v)", sumEsh/8, sumSlog/8)
	}
	// The Venom row reproduces §6.2's observation: distinct numeric
	// constants let even S-VCP do very well.
	venom := res.Rows[2]
	if venom.Vuln.Alias != "Venom" {
		t.Fatalf("row 3 is %s", venom.Vuln.Alias)
	}
	if venom.PerMethod[stats.SVCP].ROC < 0.95 {
		t.Errorf("Venom S-VCP ROC = %v; the paper's distinct-constants effect is missing",
			venom.PerMethod[stats.SVCP].ROC)
	}
	// Rendering sanity.
	text := res.String()
	if !strings.Contains(text, "Heartbleed") || !strings.Contains(text, "CROC") {
		t.Error("table rendering incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	byAspect := map[Aspect]Table2Row{}
	for _, row := range res.Rows {
		if row.NumPositive == 0 {
			t.Errorf("row %s has no positives", row.Aspects)
		}
		byAspect[row.Aspects] = row
	}
	// TRACY handles versions and patches but degrades across vendors
	// and collapses when all aspects combine (the paper's Table 2).
	if byAspect[Versions].TracyROC < 0.85 {
		t.Errorf("TRACY on versions = %v, expected strong", byAspect[Versions].TracyROC)
	}
	if byAspect[Patches].TracyROC < 0.85 {
		t.Errorf("TRACY on patches = %v, expected strong", byAspect[Patches].TracyROC)
	}
	all := Versions | CrossVendor | Patches
	if byAspect[all].TracyROC >= byAspect[Versions].TracyROC {
		t.Errorf("TRACY did not degrade from versions (%v) to all aspects (%v)",
			byAspect[Versions].TracyROC, byAspect[all].TracyROC)
	}
	// Esh stays strong on every row and wins on the full combination.
	for _, row := range res.Rows {
		if row.EshROC < 0.85 {
			t.Errorf("Esh ROC on %s = %v", row.Aspects, row.EshROC)
		}
	}
	if byAspect[all].EshROC <= byAspect[all].TracyROC {
		t.Errorf("Esh (%v) does not beat TRACY (%v) on the full combination",
			byAspect[all].EshROC, byAspect[all].TracyROC)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	matched := 0
	for _, row := range res.Rows {
		if row.Matched {
			matched++
			if row.Similarity <= 0 || row.Similarity > 1 {
				t.Errorf("%s: similarity %v", row.Alias, row.Similarity)
			}
		}
	}
	// The paper's BinDiff matched 2 of 8. Our simulated toolchains
	// preserve CFG shape more than real compilers do (documented in
	// EXPERIMENTS.md), so the matcher survives on a few more — but it
	// must still fail on a meaningful subset, and the two procedures the
	// paper reports as matched (ws-snmp, ffmpeg: small, stable
	// structure) must match here as well.
	if matched > 5 {
		t.Errorf("BinDiff matched %d/8 across vendors+patch — too many for a structural matcher\n%s",
			matched, res)
	}
	if matched < 2 {
		t.Errorf("BinDiff matched only %d/8 — the stable-structure cases should survive", matched)
	}
	for _, row := range res.Rows {
		if row.Alias == "ws-snmp" || row.Alias == "ffmpeg" {
			if !row.Matched {
				t.Errorf("%s should match (the paper's two structural survivors)", row.Alias)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Fig5(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bars) < 50 {
		t.Fatalf("bars = %d", len(res.Bars))
	}
	// Bars sorted descending and normalized.
	for i := 1; i < len(res.Bars); i++ {
		if res.Bars[i].GES > res.Bars[i-1].GES+1e-9 {
			t.Fatal("bars not sorted")
		}
	}
	if res.Bars[0].GES != 1.0 {
		t.Errorf("top bar not normalized: %v", res.Bars[0].GES)
	}
	if !res.Bars[0].TruePositive {
		t.Errorf("top result is not a Heartbleed variant: %s", res.Bars[0].Label)
	}
	if res.ROC < 0.95 {
		t.Errorf("Fig5 ROC = %v", res.ROC)
	}
	if !strings.Contains(res.String(), "gap") {
		t.Error("rendering missing gap line")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Fig6(small())
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Labels)
	if n < 15 {
		t.Fatalf("matrix too small: %d", n)
	}
	for i := range res.Matrix {
		if len(res.Matrix[i]) != n {
			t.Fatal("matrix not square")
		}
	}
	// Ground truth on the diagonal: self-similarity maximal per row.
	for i := range res.Matrix {
		for j := range res.Matrix[i] {
			if res.Matrix[i][j] > res.Matrix[i][i]+1e-9 {
				t.Errorf("row %s: %s outranks self", res.Labels[i], res.Labels[j])
			}
		}
	}
	// The paper reports avg ROC 0.986 and CROC 0.959.
	if res.AvgROC < 0.9 {
		t.Errorf("avg ROC = %v, want >= 0.9", res.AvgROC)
	}
	if res.AvgCROC < 0.8 {
		t.Errorf("avg CROC = %v, want >= 0.8", res.AvgCROC)
	}
	// CSV rendering has n+1 lines plus header fields.
	csv := res.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != n+1 {
		t.Error("CSV line count wrong")
	}
}

func TestCensusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := Census(small(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStrands == 0 || res.UniqueStrands == 0 {
		t.Fatal("empty census")
	}
	if len(res.Top) != 5 {
		t.Fatalf("top = %d", len(res.Top))
	}
	// §6.2: the most common strand is a compiler idiom appearing across
	// many procedures.
	if res.Top[0].Targets < 10 {
		t.Errorf("most common strand appears in only %d procedures", res.Top[0].Targets)
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Count > res.Top[i-1].Count {
			t.Error("census not sorted by count")
		}
	}
}

func TestConfigScales(t *testing.T) {
	if len((Config{Scale: Small}).Toolchains()) != 3 {
		t.Error("small scale should use 3 toolchains")
	}
	if len((Config{Scale: Full}).Toolchains()) != 7 {
		t.Error("full scale should use 7 toolchains")
	}
	if (Config{Scale: Full}).SynthVariants() <= (Config{Scale: Small}).SynthVariants() {
		t.Error("synth variants should grow with scale")
	}
	if (Config{}).QueryToolchain().Name() != "clang-3.5" {
		t.Error("query toolchain should be clang-3.5 (experiment #1)")
	}
	for _, s := range []Scale{Small, Medium, Full} {
		if s.String() == "" {
			t.Error("scale name empty")
		}
	}
}

func TestCrossOptShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tests are slow")
	}
	res, err := CrossOpt(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, o2o0, o0o2 := res.Rows[0], res.Rows[3], res.Rows[4]
	if base.ROC < 0.99 {
		t.Errorf("same-level baseline ROC = %v", base.ROC)
	}
	// The asymmetric VCP makes the O0 query (small, spill-severed
	// strands, each contained in the O2 code) far easier than the O2
	// query (large strands that O0's layout severs).
	if o0o2.ROC < 0.95 {
		t.Errorf("O0 query vs O2 targets ROC = %v, expected strong", o0o2.ROC)
	}
	if o2o0.ROC >= o0o2.ROC {
		t.Errorf("expected the documented asymmetry: O2→O0 (%v) below O0→O2 (%v)",
			o2o0.ROC, o0o2.ROC)
	}
}
