package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/minic"
	"repro/internal/rocauc"
	"repro/internal/stats"
	"repro/internal/tracy"
)

// Aspect is one of the paper's three problem dimensions (§5.3).
type Aspect uint8

// Aspects.
const (
	Versions Aspect = 1 << iota // same vendor, different compiler versions
	CrossVendor
	Patches
)

func (a Aspect) String() string {
	var parts []string
	if a&Versions != 0 {
		parts = append(parts, "versions")
	}
	if a&CrossVendor != 0 {
		parts = append(parts, "cross")
	}
	if a&Patches != 0 {
		parts = append(parts, "patches")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Table2Row compares TRACY (Ratio-70) and Esh on one aspect combination.
type Table2Row struct {
	Aspects     Aspect
	TracyROC    float64
	EshROC      float64
	NumPositive int
}

// Table2Result is the paper's Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// table2Aspects lists the rows in the paper's order: each single aspect,
// then the pairwise combinations, then all three.
func table2Aspects() []Aspect {
	return []Aspect{
		Versions,
		CrossVendor,
		Patches,
		Versions | CrossVendor,
		CrossVendor | Patches,
		Versions | Patches,
		Versions | CrossVendor | Patches,
	}
}

// Table2 reproduces the TRACY-vs-Esh comparison. The query is the
// Heartbleed procedure compiled with gcc-4.9 (gcc has three simulated
// versions, enabling the version aspect); each row's true positives are
// the variants selected by the aspect set, ranked within the shared
// decoy database.
func Table2(cfg Config) (*Table2Result, error) {
	v := corpus.Vulns()[0]
	queryTC, _ := compile.ByName("gcc-4.9")

	// Variant inventory: heartbleed under every toolchain and patch
	// state (regardless of scale — eight procedures are cheap).
	type variant struct {
		proc   *asm.Proc
		aspect Aspect // the aspect set that makes it a positive
	}
	var variants []variant
	for _, tc := range compile.Toolchains() {
		for _, patched := range []bool{false, true} {
			if tc.Name() == queryTC.Name() && !patched {
				continue // that is the query itself
			}
			p, err := corpus.CompileVuln(v, tc, patched)
			if err != nil {
				return nil, err
			}
			var a Aspect
			if tc.Vendor == queryTC.Vendor && tc.Name() != queryTC.Name() {
				a |= Versions
			}
			if tc.Vendor != queryTC.Vendor {
				a |= CrossVendor
			}
			if patched {
				a |= Patches
			}
			variants = append(variants, variant{proc: p, aspect: a})
		}
	}

	// Decoy negatives (scale-dependent).
	var negatives []*asm.Proc
	for _, d := range corpus.Decoys() {
		prog, err := minic.Parse(d.Src)
		if err != nil {
			return nil, err
		}
		for _, tc := range cfg.Toolchains() {
			procs, err := compile.CompileAll(prog, tc, compile.O2())
			if err != nil {
				return nil, err
			}
			for _, p := range procs {
				p.Source = asm.Provenance{Package: d.Name, SourceSym: p.Name, Toolchain: tc.Name()}
				p.Name = p.Source.Key()
				negatives = append(negatives, p)
			}
		}
	}

	query, err := corpus.CompileVuln(v, queryTC, false)
	if err != nil {
		return nil, err
	}

	// One shared database (variant positives + decoys); rows filter it.
	db := core.NewDB(core.Options{VCP: cfg.VCP, Workers: cfg.Workers})
	for _, vr := range variants {
		if err := db.AddTarget(vr.proc); err != nil {
			return nil, err
		}
	}
	for _, p := range negatives {
		if err := db.AddTarget(p); err != nil {
			return nil, err
		}
	}
	rep, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	eshScore := map[string]float64{}
	for _, ts := range rep.Results {
		eshScore[ts.Target.Name] = ts.Score(stats.Esh)
	}

	// TRACY scores once for every target.
	tq, err := tracy.Prepare(query, tracy.Default())
	if err != nil {
		return nil, err
	}
	tracyScore := map[string]float64{}
	for _, vr := range variants {
		tp, err := tracy.Prepare(vr.proc, tracy.Default())
		if err != nil {
			return nil, err
		}
		tracyScore[vr.proc.Name] = tracy.Score(tq, tp, tracy.Default())
	}
	for _, p := range negatives {
		tp, err := tracy.Prepare(p, tracy.Default())
		if err != nil {
			return nil, err
		}
		tracyScore[p.Name] = tracy.Score(tq, tp, tracy.Default())
	}

	// aspectMatch: a variant is a positive for a row iff its aspect set
	// is non-empty and contained in the row's aspects.
	aspectMatch := func(row, variant Aspect) bool {
		return variant != 0 && variant&^row == 0
	}

	res := &Table2Result{}
	for _, row := range table2Aspects() {
		var tracySamples, eshSamples []rocauc.Sample
		nPos := 0
		for _, vr := range variants {
			if !aspectMatch(row, vr.aspect) {
				continue // variants outside the row's aspects are excluded
			}
			nPos++
			tracySamples = append(tracySamples, rocauc.Sample{Score: tracyScore[vr.proc.Name], Positive: true})
			eshSamples = append(eshSamples, rocauc.Sample{Score: eshScore[vr.proc.Name], Positive: true})
		}
		for _, p := range negatives {
			tracySamples = append(tracySamples, rocauc.Sample{Score: tracyScore[p.Name]})
			eshSamples = append(eshSamples, rocauc.Sample{Score: eshScore[p.Name]})
		}
		res.Rows = append(res.Rows, Table2Row{
			Aspects:     row,
			TracyROC:    rocauc.ROC(tracySamples),
			EshROC:      rocauc.ROC(eshSamples),
			NumPositive: nPos,
		})
	}
	return res, nil
}

// String renders the table.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — TRACY (Ratio-70) vs Esh across problem aspects (ROC AUC)\n")
	fmt.Fprintf(&b, "%-24s %4s %12s %12s\n", "aspects", "#TP", "TRACY", "Esh")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %4d %12.4f %12.4f\n",
			row.Aspects, row.NumPositive, row.TracyROC, row.EshROC)
	}
	return b.String()
}
