package verifier

import (
	"fmt"

	"repro/internal/ivl"
)

// SolveBatch answers several queries in one call, the way the paper's
// §5.5 batches verifier work: the queries' statements are merged into a
// single joint program under disjoint namespaces (the paper uses Boogie's
// non-deterministic branches; our engines evaluate all paths anyway), so
// shared setup work — input classes and the sample battery — is paid
// once per batch instead of once per query.
func SolveBatch(queries []Query, samples int) ([]Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	if len(queries) == 1 {
		r, err := Solve(queries[0], samples)
		if err != nil {
			return nil, err
		}
		return []Result{r}, nil
	}

	// Merge under per-query namespaces.
	var merged Query
	assertsPer := make([]int, len(queries))
	for qi, q := range queries {
		prefix := fmt.Sprintf("b%d_", qi)
		ren := func(v ivl.Var) ivl.Var {
			v.Name = prefix + v.Name
			return v
		}
		for _, in := range q.Inputs {
			merged.Inputs = append(merged.Inputs, ren(in))
		}
		for _, s := range q.Stmts {
			ns := ivl.Stmt{Kind: s.Kind, Rhs: ivl.Rename(s.Rhs, ren)}
			if s.Kind == ivl.SAssign {
				ns.Dst = ren(s.Dst)
			} else if s.Kind == ivl.SAssert {
				assertsPer[qi]++
			}
			merged.Stmts = append(merged.Stmts, ns)
		}
	}

	res, err := Solve(merged, samples)
	if err != nil {
		return nil, err
	}

	// Split the flat assertion verdicts back per query.
	out := make([]Result, len(queries))
	pos := 0
	for qi := range queries {
		n := assertsPer[qi]
		out[qi] = Result{
			Holds:  append([]bool{}, res.Holds[pos:pos+n]...),
			Proven: append([]bool{}, res.Proven[pos:pos+n]...),
		}
		pos += n
	}
	return out, nil
}
