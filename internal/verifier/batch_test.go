package verifier

import (
	"testing"

	"repro/internal/ivl"
)

func TestSolveBatchMatchesIndividualSolve(t *testing.T) {
	mk := func(c1, c2 uint64) Query {
		return joint(
			[]ivl.Var{iv("xq"), iv("xt")},
			ivl.Assume(eq("xq", "xt")),
			assign("vq", ivl.Bin(ivl.Add, ivl.IntVar("xq"), ivl.C(c1))),
			assign("vt", ivl.Bin(ivl.Add, ivl.IntVar("xt"), ivl.C(c2))),
			ivl.Assert(eq("vq", "vt")),
			ivl.Assert(eq("vq", "vq")),
		)
	}
	queries := []Query{mk(1, 1), mk(1, 2), mk(7, 7)}

	batch, err := SolveBatch(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, q := range queries {
		single, err := Solve(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i].Holds) != len(single.Holds) {
			t.Fatalf("query %d: assertion counts differ", i)
		}
		for j := range single.Holds {
			if batch[i].Holds[j] != single.Holds[j] {
				t.Errorf("query %d assert %d: batch %v, single %v",
					i, j, batch[i].Holds[j], single.Holds[j])
			}
		}
	}
	// Sanity on content: queries 0 and 2 hold, query 1 does not.
	if !batch[0].Holds[0] || batch[1].Holds[0] || !batch[2].Holds[0] {
		t.Errorf("batch verdicts wrong: %+v", batch)
	}
}

func TestSolveBatchNamespaceIsolation(t *testing.T) {
	// Identical variable names across queries must not interfere: the
	// two queries assume different input pairings and must get their own
	// verdicts.
	q1 := joint(
		[]ivl.Var{iv("a"), iv("b")},
		ivl.Assume(eq("a", "b")),
		assign("v", ivl.Bin(ivl.Sub, ivl.IntVar("a"), ivl.IntVar("b"))),
		assign("w", ivl.C(0)),
		ivl.Assert(eq("v", "w")),
	)
	q2 := joint(
		[]ivl.Var{iv("a"), iv("b")}, // no assumption: a and b differ
		assign("v", ivl.Bin(ivl.Sub, ivl.IntVar("a"), ivl.IntVar("b"))),
		assign("w", ivl.C(0)),
		ivl.Assert(eq("v", "w")),
	)
	res, err := SolveBatch([]Query{q1, q2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Holds[0] {
		t.Error("assumed-equal query should hold")
	}
	if res[1].Holds[0] {
		t.Error("unassumed query leaked the other query's assumption")
	}
}

func TestSolveBatchEmptyAndSingle(t *testing.T) {
	if res, err := SolveBatch(nil, 0); err != nil || res != nil {
		t.Errorf("empty batch: %v %v", res, err)
	}
	q := joint([]ivl.Var{iv("x")},
		assign("v", ivl.IntVar("x")),
		ivl.Assert(eq("v", "v")))
	res, err := SolveBatch([]Query{q}, 0)
	if err != nil || len(res) != 1 || !res[0].Holds[0] {
		t.Errorf("single batch: %+v %v", res, err)
	}
}
