package verifier

import (
	"testing"

	"repro/internal/ivl"
)

func iv(n string) ivl.Var                  { return ivl.Var{Name: n, Type: ivl.Int} }
func mv(n string) ivl.Var                  { return ivl.Var{Name: n, Type: ivl.Mem} }
func eq(a, b string) ivl.Expr              { return ivl.Bin(ivl.Eq, ivl.IntVar(a), ivl.IntVar(b)) }
func assign(d string, e ivl.Expr) ivl.Stmt { return ivl.Assign(iv(d), e) }

// joint builds the canonical Algorithm-2 query shape used in tests.
func joint(inputs []ivl.Var, stmts ...ivl.Stmt) Query {
	return Query{Inputs: inputs, Stmts: stmts}
}

func TestSolveProvesSyntacticVariants(t *testing.T) {
	// Query strand: vq = (xq + 1) * 2
	// Target strand: vt = (xt * 2) + 2   — equal under xq == xt.
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		ivl.Assume(eq("xq", "xt")),
		assign("vq", ivl.Bin(ivl.Mul, ivl.Bin(ivl.Add, ivl.IntVar("xq"), ivl.C(1)), ivl.C(2))),
		assign("vt", ivl.Bin(ivl.Add, ivl.Bin(ivl.Mul, ivl.IntVar("xt"), ivl.C(2)), ivl.C(2))),
		ivl.Assert(eq("vq", "vt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds[0] {
		t.Error("equivalent computations not accepted")
	}
	if !res.Proven[0] {
		t.Error("distributive pair should be proved by canonicalization")
	}
}

func TestSolveShiftVsMul(t *testing.T) {
	// x << 3 vs x * 8 — the classic strength-reduction divergence.
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		ivl.Assume(eq("xq", "xt")),
		assign("vq", ivl.Bin(ivl.Shl, ivl.IntVar("xq"), ivl.C(3))),
		assign("vt", ivl.Bin(ivl.Mul, ivl.IntVar("xt"), ivl.C(8))),
		ivl.Assert(eq("vq", "vt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds[0] || !res.Proven[0] {
		t.Errorf("shl/mul not proved: %+v", res)
	}
}

func TestSolveRefutesDifferent(t *testing.T) {
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		ivl.Assume(eq("xq", "xt")),
		assign("vq", ivl.Bin(ivl.Add, ivl.IntVar("xq"), ivl.C(1))),
		assign("vt", ivl.Bin(ivl.Add, ivl.IntVar("xt"), ivl.C(2))),
		ivl.Assert(eq("vq", "vt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds[0] {
		t.Error("x+1 == x+2 wrongly accepted")
	}
}

func TestSolveWithoutAssumption(t *testing.T) {
	// Without assuming xq == xt the inputs get different slots, so the
	// same computation must NOT be equal.
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		assign("vq", ivl.Bin(ivl.Add, ivl.IntVar("xq"), ivl.C(1))),
		assign("vt", ivl.Bin(ivl.Add, ivl.IntVar("xt"), ivl.C(1))),
		ivl.Assert(eq("vq", "vt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds[0] {
		t.Error("unrelated inputs wrongly considered equal")
	}
}

func TestSolveFig4SemanticDifference(t *testing.T) {
	// The paper's Figure 4: syntactically near-identical strands
	// (v2 = v1 + 1 vs v2 = v1 + 16) must disagree on nearly everything.
	build := func(c uint64, pfx string) []ivl.Stmt {
		v := func(i int) string { return pfx + string(rune('0'+i)) }
		return []ivl.Stmt{
			assign(v(2), ivl.Bin(ivl.Add, ivl.IntVar(pfx+"1"), ivl.C(c))),
			assign(v(3), ivl.Bin(ivl.Xor, ivl.IntVar(v(2)), ivl.IntVar(pfx+"1"))),
			assign(v(4), ivl.Bin(ivl.And, ivl.IntVar(v(3)), ivl.IntVar(v(2)))),
			assign(v(5), ivl.Bin(ivl.SLt, ivl.IntVar(v(4)), ivl.C(0))),
		}
	}
	stmts := []ivl.Stmt{ivl.Assume(eq("q1", "t1"))}
	stmts = append(stmts, build(1, "q")...)
	stmts = append(stmts, build(16, "t")...)
	for _, pair := range [][2]string{{"q2", "t2"}, {"q3", "t3"}, {"q4", "t4"}, {"q5", "t5"}} {
		stmts = append(stmts, ivl.Assert(eq(pair[0], pair[1])))
	}
	q := Query{Inputs: []ivl.Var{iv("q1"), iv("t1")}, Stmts: stmts}
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, h := range res.Holds {
		if h {
			matched++
		}
	}
	if matched != 0 {
		t.Errorf("Fig-4 strands matched %d/4 variables, want 0", matched)
	}
}

func TestSolveMemoryEquivalence(t *testing.T) {
	// Both strands store the same value at the same (assumed-equal)
	// address: resulting memories must be equal.
	st := func(mem, addr, val, dst string) ivl.Stmt {
		return ivl.Stmt{Kind: ivl.SAssign, Dst: mv(dst), Rhs: ivl.StoreExpr{
			Mem:  ivl.VarExpr{V: mv(mem)},
			Addr: ivl.IntVar(addr),
			Val:  ivl.IntVar(val),
			W:    8,
		}}
	}
	q := Query{
		Inputs: []ivl.Var{mv("mq"), mv("mt"), iv("aq"), iv("at"), iv("vq"), iv("vt")},
		Stmts: []ivl.Stmt{
			ivl.Assume(eq("mq", "mt")),
			ivl.Assume(eq("aq", "at")),
			ivl.Assume(eq("vq", "vt")),
			st("mq", "aq", "vq", "mq1"),
			st("mt", "at", "vt", "mt1"),
			ivl.Assert(eq("mq1", "mt1")),
		},
	}
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds[0] {
		t.Error("identical stores produce unequal memories")
	}
}

func TestSolveCallEquivalence(t *testing.T) {
	call := func(arg string) ivl.Expr {
		return ivl.CallExpr{Sym: "call/1", Args: []ivl.Expr{ivl.IntVar(arg)}}
	}
	q := joint(
		[]ivl.Var{iv("aq"), iv("at")},
		ivl.Assume(eq("aq", "at")),
		assign("rq", call("aq")),
		assign("rt", call("at")),
		ivl.Assert(eq("rq", "rt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds[0] {
		t.Error("same-argument uninterpreted calls not equal")
	}
	if !res.Proven[0] {
		t.Error("congruent calls should be proved by canonicalization")
	}
}

func TestSolveRejectsBadAssumption(t *testing.T) {
	q := joint(
		[]ivl.Var{iv("x")},
		ivl.Assume(ivl.Bin(ivl.SLt, ivl.IntVar("x"), ivl.C(5))),
	)
	if _, err := Solve(q, 0); err == nil {
		t.Error("non-equality assumption not rejected")
	}
	q = joint(
		[]ivl.Var{iv("x")},
		assign("v", ivl.C(1)),
		ivl.Assume(eq("x", "v")), // v is not an input
	)
	if _, err := Solve(q, 0); err == nil {
		t.Error("assumption over non-input not rejected")
	}
}

func TestSolveZeroOnlyDifferenceCaught(t *testing.T) {
	// vq = ite(x != 0, 1, 1) == 1 constant; vt = (x != 0).
	// These agree except at x == 0 — the battery must refute.
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		ivl.Assume(eq("xq", "xt")),
		assign("vq", ivl.C(1)),
		assign("vt", ivl.Bin(ivl.Ne, ivl.IntVar("xt"), ivl.C(0))),
		ivl.Assert(eq("vq", "vt")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds[0] {
		t.Error("x!=0 accepted as constant 1 (sample battery hole)")
	}
}

func TestSolveMultipleAssertsOrdered(t *testing.T) {
	q := joint(
		[]ivl.Var{iv("xq"), iv("xt")},
		ivl.Assume(eq("xq", "xt")),
		assign("a", ivl.Bin(ivl.Add, ivl.IntVar("xq"), ivl.C(1))),
		assign("b", ivl.Bin(ivl.Add, ivl.IntVar("xt"), ivl.C(1))),
		assign("c", ivl.Bin(ivl.Add, ivl.IntVar("xt"), ivl.C(2))),
		ivl.Assert(eq("a", "b")),
		ivl.Assert(eq("a", "c")),
		ivl.Assert(eq("b", "b")),
	)
	res, err := Solve(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if res.Holds[i] != want[i] {
			t.Errorf("assert %d = %v, want %v", i, res.Holds[i], want[i])
		}
	}
}
