package verifier

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
)

// Property tests pitting Solve against brute-force evaluation: for random
// joint programs, any assertion Solve accepts must hold on thousands of
// fresh random environments satisfying the assumptions (soundness up to
// the documented sampling caveat), and any assertion brute force shows to
// hold on the sample battery must be accepted (completeness relative to
// the battery).

// randomJoint builds two structurally related strands: the target is the
// query with operands rewritten through equivalence-preserving or
// equivalence-breaking transforms, plus assumptions and assertions.
func randomJoint(rng *rand.Rand, breakIt bool) (Query, int) {
	nIn := 1 + rng.Intn(2)
	var inputs []ivl.Var
	var stmts []ivl.Stmt
	for i := 0; i < nIn; i++ {
		q := ivl.Var{Name: "q_in" + string(rune('0'+i)), Type: ivl.Int}
		t := ivl.Var{Name: "t_in" + string(rune('0'+i)), Type: ivl.Int}
		inputs = append(inputs, q, t)
		stmts = append(stmts, ivl.Assume(ivl.Bin(ivl.Eq, ivl.V(q), ivl.V(t))))
	}
	in := func(side string, i int) ivl.Expr { return ivl.IntVar(side + "_in" + string(rune('0'+i))) }

	// A small arithmetic chain; the target uses rewritten but equivalent
	// forms (x*2 ↔ x<<1, a+b ↔ b+a, x-c ↔ x+(-c)).
	c := int64(rng.Intn(64) + 1)
	qExpr := ivl.Bin(ivl.Add,
		ivl.Bin(ivl.Mul, in("q", 0), ivl.C(2)),
		ivl.Bin(ivl.Sub, in("q", nIn-1), ivl.C(uint64(c))))
	tExpr := ivl.Bin(ivl.Add,
		ivl.Bin(ivl.Add, in("t", nIn-1), ivl.C(uint64(-c))),
		ivl.Bin(ivl.Shl, in("t", 0), ivl.C(1)))
	if breakIt {
		tExpr = ivl.Bin(ivl.Add, tExpr, ivl.C(uint64(rng.Intn(5)+1)))
	}
	stmts = append(stmts,
		ivl.Assign(ivl.Var{Name: "q_v", Type: ivl.Int}, qExpr),
		ivl.Assign(ivl.Var{Name: "t_v", Type: ivl.Int}, tExpr),
		ivl.Assert(ivl.Bin(ivl.Eq, ivl.IntVar("q_v"), ivl.IntVar("t_v"))),
	)
	return Query{Inputs: inputs, Stmts: stmts}, nIn
}

func TestQuickSolveAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		breakIt := trial%2 == 1
		q, nIn := randomJoint(rng, breakIt)
		res, err := Solve(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds[0] == breakIt {
			t.Fatalf("trial %d: Solve says %v for broken=%v", trial, res.Holds[0], breakIt)
		}
		// Soundness: when Solve accepts, the equality holds on fresh
		// random environments (not just the battery).
		if res.Holds[0] {
			for check := 0; check < 50; check++ {
				env := ivl.Env{}
				for i := 0; i < nIn; i++ {
					v := rng.Uint64()
					env["q_in"+string(rune('0'+i))] = ivl.IntValue(v)
					env["t_in"+string(rune('0'+i))] = ivl.IntValue(v)
				}
				failed := map[int]bool{}
				var asserts []ivl.Stmt
				for _, s := range q.Stmts {
					if s.Kind != ivl.SAssume {
						asserts = append(asserts, s)
					}
				}
				ok, err := ivl.RunStmts(asserts, env, failed)
				if err != nil || !ok {
					t.Fatal(err)
				}
				if len(failed) > 0 {
					t.Fatalf("trial %d: Solve accepted but equality fails on env %v", trial, env)
				}
			}
		}
	}
}

// TestSolveProofEngineAgreesWithSampling: every assertion the symbolic
// engine proves must also survive the sampling engine (the two engines
// may never disagree in that direction).
func TestSolveProofEngineAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 120; trial++ {
		q, _ := randomJoint(rng, false)
		res, err := Solve(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Holds {
			if res.Proven[i] && !res.Holds[i] {
				t.Fatalf("trial %d: proven but not holding", trial)
			}
		}
	}
}
