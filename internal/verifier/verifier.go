// Package verifier provides the Solve procedure the paper assumes: given
// a straight-line assume/assert program (two strands joined with a shared
// assumption prefix over their inputs), decide which assertions hold
// under all inputs satisfying the assumptions.
//
// Solve replaces the Boogie/Z3 stack, which has no Go bindings. It
// combines two engines:
//
//  1. a sound prover: each asserted equality is discharged by substituting
//     the SSA definitions into both sides and comparing canonical forms
//     (package smt's normalizer);
//  2. a randomized refuter: the program is evaluated over package smt's
//     structured sample battery, with assumption-equated inputs sharing
//     sample slots; an equality that fails any sample is definitively
//     false, and one that holds on every sample but is not proved is
//     accepted with negligible error probability.
//
// The verdict surface matches the paper's Solve: assertion → {true,false}.
package verifier

import (
	"fmt"
	"strconv"

	"repro/internal/ivl"
	"repro/internal/smt"
)

// Query is a joint verification program in the shape Algorithm 2 builds:
// input-equality assumptions, then the two strands' bodies, then equality
// assertions.
type Query struct {
	Inputs []ivl.Var  // union of both strands' inputs (unbound variables)
	Stmts  []ivl.Stmt // assumes, assignments, asserts in program order
}

// Result reports, per assert statement (in order of appearance), whether
// the asserted condition holds for all inputs satisfying the assumptions.
// Proven marks assertions discharged by the sound canonicalization engine
// (the rest were accepted by exhaustive sample agreement).
type Result struct {
	Holds  []bool
	Proven []bool
}

// maxSubstSize bounds symbolic substitution; larger terms fall back to
// the sampling engine.
const maxSubstSize = 4000

// Solve decides the query's assertions. samples <= 0 selects
// smt.DefaultSamples.
func Solve(q Query, samples int) (Result, error) {
	if samples <= 0 {
		samples = smt.DefaultSamples
	}

	inputSet := make(map[string]ivl.Var, len(q.Inputs))
	for _, v := range q.Inputs {
		inputSet[v.Name] = v
	}

	// Union-find over inputs for assumption classes.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	var asserts []ivl.Stmt
	var assigns []ivl.Stmt
	for _, s := range q.Stmts {
		switch s.Kind {
		case ivl.SAssume:
			eq, ok := s.Rhs.(ivl.BinExpr)
			if !ok || eq.Op != ivl.Eq {
				return Result{}, fmt.Errorf("verifier: unsupported assumption %v", s.Rhs)
			}
			xv, okx := eq.X.(ivl.VarExpr)
			yv, oky := eq.Y.(ivl.VarExpr)
			if !okx || !oky {
				return Result{}, fmt.Errorf("verifier: assumption must equate variables: %v", s.Rhs)
			}
			if _, isIn := inputSet[xv.V.Name]; !isIn {
				return Result{}, fmt.Errorf("verifier: assumption over non-input %q", xv.V.Name)
			}
			if _, isIn := inputSet[yv.V.Name]; !isIn {
				return Result{}, fmt.Errorf("verifier: assumption over non-input %q", yv.V.Name)
			}
			union(xv.V.Name, yv.V.Name)
		case ivl.SAssign:
			assigns = append(assigns, s)
		case ivl.SAssert:
			asserts = append(asserts, s)
		}
	}

	// Assign each input class a slot. Deterministic: slots in input order.
	slot := map[string]int{}
	next := 0
	for _, v := range q.Inputs {
		r := find(v.Name)
		if _, ok := slot[r]; !ok {
			slot[r] = next
			next++
		}
	}

	// Engine 1: symbolic substitution + canonicalization.
	symb := map[string]ivl.Expr{}
	for _, v := range q.Inputs {
		symb[v.Name] = ivl.VarExpr{V: ivl.Var{Name: fmt.Sprintf("slot%d", slot[find(v.Name)]), Type: v.Type}}
	}
	substOK := map[string]bool{}
	for _, v := range q.Inputs {
		substOK[v.Name] = true
	}
	for _, s := range assigns {
		ok := true
		e := substitute(s.Rhs, symb, &ok)
		if ok && ivl.Size(e) <= maxSubstSize {
			symb[s.Dst.Name] = smt.Normalize(e)
			substOK[s.Dst.Name] = true
		} else {
			substOK[s.Dst.Name] = false
		}
	}

	res := Result{
		Holds:  make([]bool, len(asserts)),
		Proven: make([]bool, len(asserts)),
	}
	for i, a := range asserts {
		eq, ok := a.Rhs.(ivl.BinExpr)
		if !ok || eq.Op != ivl.Eq {
			continue
		}
		xv, okx := eq.X.(ivl.VarExpr)
		yv, oky := eq.Y.(ivl.VarExpr)
		if okx && oky && substOK[xv.V.Name] && substOK[yv.V.Name] {
			if symb[xv.V.Name].String() == symb[yv.V.Name].String() {
				res.Holds[i] = true
				res.Proven[i] = true
			}
		}
	}

	// Engine 2: sample evaluation for everything not yet proven.
	pendingAny := false
	for i := range asserts {
		if !res.Proven[i] {
			pendingAny = true
		}
	}
	if !pendingAny {
		return res, nil
	}

	slots := make([]int, len(q.Inputs))
	for i, v := range q.Inputs {
		slots[i] = slot[find(v.Name)]
	}
	holdsAll, ok := sampleKernel(q.Inputs, slots, assigns, asserts, samples)
	if !ok {
		var err error
		holdsAll, err = sampleScalar(q.Inputs, slots, assigns, asserts, samples)
		if err != nil {
			return Result{}, err
		}
	}
	for i := range asserts {
		if !res.Proven[i] {
			res.Holds[i] = holdsAll[i]
		}
	}
	return res, nil
}

// assertDefName names the synthetic SSA definition holding assert i's
// condition in the kernel path. The NUL byte keeps it disjoint from any
// variable a lifted strand can contain.
func assertDefName(i int) string { return "\x00assert" + strconv.Itoa(i) }

// sampleKernel evaluates the assertion conditions over the sample
// battery through the compiled batched kernel: the assignments plus one
// synthetic definition per assert compile to one Program, one Run binds
// every input to its assumption-class slot, and assert i holds iff its
// definition's lane vector is nonzero in every sample. Returns ok=false
// — caller falls back to the scalar tree-walker — when the program does
// not compile or the kernel's static typing rejects it, so ill-typed
// queries keep their scalar error behavior.
func sampleKernel(inputs []ivl.Var, slots []int, assigns, asserts []ivl.Stmt, samples int) ([]bool, bool) {
	stmts := make([]ivl.Stmt, 0, len(assigns)+len(asserts))
	stmts = append(stmts, assigns...)
	for i, a := range asserts {
		stmts = append(stmts, ivl.Assign(ivl.Var{Name: assertDefName(i), Type: ivl.Int}, a.Rhs))
	}
	prog, err := smt.CompileStrand(stmts, inputs)
	if err != nil || !prog.BatchOK() {
		return nil, false
	}
	kern := prog.AcquireKernel(samples)
	defer prog.ReleaseKernel(kern)
	kern.Run(slots)
	holds := make([]bool, len(asserts))
	base := len(assigns)
	for i := range asserts {
		holds[i] = true
		for _, bits := range kern.DefBits(base + i) {
			if bits == 0 {
				holds[i] = false
				break
			}
		}
	}
	return holds, true
}

// sampleScalar is the reference sampling engine: one tree-walking
// evaluation pass per sample. Kept as the fallback for programs the
// kernel cannot serve and as the differential oracle for sampleKernel.
func sampleScalar(inputs []ivl.Var, slots []int, assigns, asserts []ivl.Stmt, samples int) ([]bool, error) {
	holdsAll := make([]bool, len(asserts))
	for i := range holdsAll {
		holdsAll[i] = true
	}
	for k := 0; k < samples; k++ {
		env := ivl.Env{}
		for i, v := range inputs {
			env[v.Name] = smt.SlotValue(k, slots[i], v.Type)
		}
		for _, s := range assigns {
			val, err := ivl.Eval(s.Rhs, env)
			if err != nil {
				return nil, err
			}
			env[s.Dst.Name] = val
		}
		for i, a := range asserts {
			v, err := ivl.Eval(a.Rhs, env)
			if err != nil {
				return nil, err
			}
			if v.Bits == 0 {
				holdsAll[i] = false
			}
		}
	}
	return holdsAll, nil
}

// substitute replaces variables by their symbolic definitions. ok is
// cleared when a referenced variable has no usable definition.
func substitute(e ivl.Expr, defs map[string]ivl.Expr, ok *bool) ivl.Expr {
	switch t := e.(type) {
	case ivl.VarExpr:
		d, has := defs[t.V.Name]
		if !has {
			*ok = false
			return e
		}
		return d
	case ivl.ConstExpr:
		return t
	case ivl.UnExpr:
		return ivl.UnExpr{Op: t.Op, X: substitute(t.X, defs, ok)}
	case ivl.BinExpr:
		return ivl.BinExpr{Op: t.Op, X: substitute(t.X, defs, ok), Y: substitute(t.Y, defs, ok)}
	case ivl.IteExpr:
		return ivl.IteExpr{
			Cond: substitute(t.Cond, defs, ok),
			Then: substitute(t.Then, defs, ok),
			Else: substitute(t.Else, defs, ok),
		}
	case ivl.TruncExpr:
		return ivl.TruncExpr{Bits: t.Bits, X: substitute(t.X, defs, ok)}
	case ivl.SextExpr:
		return ivl.SextExpr{Bits: t.Bits, X: substitute(t.X, defs, ok)}
	case ivl.LoadExpr:
		return ivl.LoadExpr{Mem: substitute(t.Mem, defs, ok), Addr: substitute(t.Addr, defs, ok), W: t.W}
	case ivl.StoreExpr:
		return ivl.StoreExpr{
			Mem:  substitute(t.Mem, defs, ok),
			Addr: substitute(t.Addr, defs, ok),
			Val:  substitute(t.Val, defs, ok),
			W:    t.W,
		}
	case ivl.CallExpr:
		args := make([]ivl.Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = substitute(a, defs, ok)
		}
		return ivl.CallExpr{Sym: t.Sym, Args: args}
	}
	return e
}
