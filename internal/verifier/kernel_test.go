package verifier

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
)

// Differential guard for the Engine-2 port: the batched-kernel sampling
// path must agree with the scalar tree-walking path on every assertion,
// over randomly generated joint programs (including memory traffic and
// equivalence-breaking rewrites), and the kernel path must actually
// engage for the program shapes Algorithm 2 builds.

// splitJoint decomposes a query the way Solve does: union-find over the
// assumption-equated inputs, slots in input order, assigns and asserts
// in program order.
func splitJoint(t *testing.T, q Query) (slots []int, assigns, asserts []ivl.Stmt) {
	t.Helper()
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, s := range q.Stmts {
		switch s.Kind {
		case ivl.SAssume:
			eq := s.Rhs.(ivl.BinExpr)
			x := eq.X.(ivl.VarExpr).V.Name
			y := eq.Y.(ivl.VarExpr).V.Name
			parent[find(x)] = find(y)
		case ivl.SAssign:
			assigns = append(assigns, s)
		case ivl.SAssert:
			asserts = append(asserts, s)
		}
	}
	slot := map[string]int{}
	slots = make([]int, len(q.Inputs))
	for i, v := range q.Inputs {
		r := find(v.Name)
		if _, ok := slot[r]; !ok {
			slot[r] = len(slot)
		}
		slots[i] = slot[r]
	}
	return slots, assigns, asserts
}

func TestSampleKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kernelRuns := 0
	for trial := 0; trial < 300; trial++ {
		q, _ := randomJoint(rng, trial%2 == 1)
		// Every few trials, add memory traffic so the arena-backed mem
		// lanes are exercised through the verifier surface too.
		if trial%3 == 0 {
			m := ivl.Var{Name: "m_in", Type: ivl.Mem}
			q.Inputs = append(q.Inputs, m)
			q.Stmts = append(q.Stmts,
				ivl.Assign(ivl.Var{Name: "q_l", Type: ivl.Int},
					ivl.LoadExpr{Mem: ivl.V(m), Addr: ivl.IntVar("q_v"), W: 8}),
				ivl.Assign(ivl.Var{Name: "t_l", Type: ivl.Int},
					ivl.LoadExpr{Mem: ivl.V(m), Addr: ivl.IntVar("t_v"), W: 8}),
				ivl.Assert(ivl.Bin(ivl.Eq, ivl.IntVar("q_l"), ivl.IntVar("t_l"))),
			)
		}
		slots, assigns, asserts := splitJoint(t, q)
		want, err := sampleScalar(q.Inputs, slots, assigns, asserts, 0x20)
		if err != nil {
			t.Fatalf("trial %d: scalar engine: %v", trial, err)
		}
		got, ok := sampleKernel(q.Inputs, slots, assigns, asserts, 0x20)
		if !ok {
			t.Fatalf("trial %d: kernel rejected a joint program Algorithm 2 builds", trial)
		}
		kernelRuns++
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d assert %d: kernel %v, scalar %v", trial, i, got[i], want[i])
			}
		}
	}
	if kernelRuns == 0 {
		t.Fatal("kernel path never engaged")
	}
}

// TestSolveKernelFallback pins the fallback contract: a query the
// kernel's static typing rejects (a mem-typed assert condition) still
// solves through the scalar path rather than failing.
func TestSolveKernelFallback(t *testing.T) {
	m := ivl.Var{Name: "m", Type: ivl.Mem}
	q := Query{
		Inputs: []ivl.Var{m},
		Stmts: []ivl.Stmt{
			ivl.Assert(ivl.Bin(ivl.Eq, ivl.V(m), ivl.V(m))),
		},
	}
	slots, assigns, asserts := splitJoint(t, q)
	if _, ok := sampleKernel(q.Inputs, slots, assigns, asserts, 8); ok {
		// Eq over mems is int-typed and kernel-servable; that is fine —
		// the fallback contract is only about rejection, verified below
		// with a bare mem condition.
		t.Log("mem equality served by kernel")
	}
	bare := Query{
		Inputs: []ivl.Var{m},
		Stmts:  []ivl.Stmt{ivl.Assert(ivl.V(m))},
	}
	res, err := Solve(bare, 8)
	if err != nil {
		t.Fatalf("Solve fell over on a kernel-rejected query: %v", err)
	}
	if len(res.Holds) != 1 {
		t.Fatalf("want 1 assert verdict, got %d", len(res.Holds))
	}
}
