package asm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	tests := []struct {
		r    Reg
		w    Width
		want string
	}{
		{RAX, Width8, "rax"}, {RAX, Width4, "eax"}, {RAX, Width2, "ax"}, {RAX, Width1, "al"},
		{RSP, Width8, "rsp"}, {RSP, Width1, "spl"},
		{R8, Width8, "r8"}, {R8, Width4, "r8d"}, {R8, Width2, "r8w"}, {R8, Width1, "r8b"},
		{R15, Width4, "r15d"}, {RDI, Width1, "dil"},
	}
	for _, tt := range tests {
		if got := tt.r.Name(tt.w); got != tt.want {
			t.Errorf("Reg(%d).Name(%d) = %q, want %q", tt.r, tt.w, got, tt.want)
		}
	}
}

func TestWidthMask(t *testing.T) {
	if Width1.Mask() != 0xFF || Width2.Mask() != 0xFFFF ||
		Width4.Mask() != 0xFFFF_FFFF || Width8.Mask() != ^uint64(0) {
		t.Fatal("width masks wrong")
	}
}

func TestCCNegate(t *testing.T) {
	for c := CC(0); c < numCCs; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("Negate not involutive for %v", c)
		}
		m := NewMachine()
		for _, f := range []Flags{{}, {ZF: true}, {SF: true}, {OF: true}, {CF: true},
			{ZF: true, SF: true}, {SF: true, OF: true}, {CF: true, ZF: true}} {
			m.Flags = f
			if m.cond(c) == m.cond(c.Negate()) {
				t.Errorf("cond(%v) == cond(%v) under flags %+v", c, c.Negate(), f)
			}
		}
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{MkInst(MOV, R64(RAX), R64(RBX)), "mov rax, rbx"},
		{MkInst(MOV, R32(RAX), Imm(0)), "mov eax, 0"},
		{MkInst(LEA, R64(R14), MemIdx(R12, NoReg, 1, 0x13, Width8)), "lea r14, qword [r12+0x13]"},
		{MkInst(MOV, Mem(R13, 1, Width1), R8L(RAX)), "mov byte [r13+0x1], al"},
		{MkInst(ADD, R64(RBP), Imm(3)), "add rbp, 3"},
		{MkJcc(L, "loc_22F4"), "jl loc_22F4"},
		{MkUnary(SHR, R32(RAX)), "shr eax"},
		{Inst{Op: SETCC, CC: NE, Dst: R8L(RCX)}, "setne cl"},
		{Inst{Op: CMOVCC, CC: GE, Dst: R64(RAX), Src: R64(RDX)}, "cmovge rax, rdx"},
		{MkCall("memcpy"), "call memcpy"},
		{Label("top"), "top:"},
		{Inst{Op: RET}, "ret"},
		{MkInst(MOV, R64(RDI), MemIdx(RAX, RCX, 8, -8, Width8)), "mov rdi, qword [rax+rcx*8-0x8]"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Inst.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `proc example
	mov rax, rbx
	lea r14, qword [r12+0x13]
	add rbp, 3
	mov byte [r13+0x1], al
	shr eax, 8
	xor ebx, ebx
	test eax, eax
	jl done
	cmp rcx, 0x40
	cmovge rax, rdx
	setne cl
	movzx edx, cl
	push rbp
	pop rbp
	call write_bytes
	imul rsi, rdi
	mov rdi, qword [rax+rcx*8-0x8]
done:
	ret
endp
`
	p, err := ParseProc(src)
	if err != nil {
		t.Fatalf("ParseProc: %v", err)
	}
	if p.Name != "example" {
		t.Fatalf("name = %q", p.Name)
	}
	reparsed, err := ParseProc(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if len(reparsed.Insts) != len(p.Insts) {
		t.Fatalf("instruction count changed: %d vs %d", len(reparsed.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i].String() != reparsed.Insts[i].String() {
			t.Errorf("inst %d: %q vs %q", i, p.Insts[i], reparsed.Insts[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"mov rax, rbx\n",                       // instruction outside proc
		"proc a\nbogus rax\nendp\n",            // unknown mnemonic
		"proc a\nproc b\nendp\n",               // nested proc
		"proc a\n",                             // unterminated
		"endp\n",                               // endp outside proc
		"proc a\nmov rax\nendp\n",              // missing src handled as unary mov — still parses; use 3 operands instead
		"proc a\nmov rax, rbx, rcx\nendp\n",    // too many operands
		"proc a\nmov rax, [eax]\nendp\n",       // 32-bit base register
		"proc a\nmov rax, [rax+rbx*3]\nendp\n", // bad scale
		"proc a\nret rax\nendp\n",              // ret takes no operands
		"proc a\njmp\nendp\n",                  // jmp needs target
	}
	for _, src := range bad {
		if src == "proc a\nmov rax\nendp\n" {
			continue // unary mov parses; semantic layers reject it
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// runSnippet executes instructions with the given initial registers and
// returns the final machine.
func runSnippet(t *testing.T, init map[Reg]uint64, insts ...Inst) *Machine {
	t.Helper()
	m := NewMachine()
	for r, v := range init {
		m.Regs[r] = v
	}
	p := &Proc{Name: "snip", Insts: append(insts, Inst{Op: RET})}
	m.AddProc(p)
	if _, err := m.Run("snip"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestEmulatorArith(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RAX: 10, RBX: 3},
		MkInst(ADD, R64(RAX), R64(RBX)),
	)
	if m.Regs[RAX] != 13 {
		t.Errorf("add: rax = %d, want 13", m.Regs[RAX])
	}

	m = runSnippet(t, map[Reg]uint64{RAX: 10},
		MkInst(SUB, R64(RAX), Imm(15)),
	)
	if int64(m.Regs[RAX]) != -5 {
		t.Errorf("sub: rax = %d, want -5", int64(m.Regs[RAX]))
	}
	if !m.Flags.SF || !m.Flags.CF || m.Flags.ZF {
		t.Errorf("sub flags = %+v", m.Flags)
	}

	m = runSnippet(t, map[Reg]uint64{RAX: 0xFFFF_FFFF_FFFF_FFFF},
		MkInst(ADD, R32(RAX), Imm(1)),
	)
	if m.Regs[RAX] != 0 {
		t.Errorf("32-bit write should zero-extend: rax = %#x", m.Regs[RAX])
	}

	m = runSnippet(t, map[Reg]uint64{RAX: 0x1122_3344_5566_7788},
		MkInst(MOV, R8L(RAX), Imm(0xFF)),
	)
	if m.Regs[RAX] != 0x1122_3344_5566_77FF {
		t.Errorf("8-bit write should merge: rax = %#x", m.Regs[RAX])
	}

	m = runSnippet(t, map[Reg]uint64{RAX: 7, RBX: 6},
		MkInst(IMUL, R64(RAX), R64(RBX)),
	)
	if m.Regs[RAX] != 42 {
		t.Errorf("imul: rax = %d", m.Regs[RAX])
	}

	minus100 := int64(-100)
	m = runSnippet(t, map[Reg]uint64{RAX: uint64(minus100), RCX: 7},
		Inst{Op: CQO}, MkUnary(IDIV, R64(RCX)),
	)
	if int64(m.Regs[RAX]) != -14 || int64(m.Regs[RDX]) != -2 {
		t.Errorf("idiv: q=%d r=%d", int64(m.Regs[RAX]), int64(m.Regs[RDX]))
	}
}

func TestEmulatorShifts(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RAX: 0x8000_0000_0000_0000},
		MkInst(SAR, R64(RAX), Imm(63)),
	)
	if m.Regs[RAX] != ^uint64(0) {
		t.Errorf("sar: rax = %#x", m.Regs[RAX])
	}
	m = runSnippet(t, map[Reg]uint64{RAX: 0x8000_0000_0000_0000},
		MkInst(SHR, R64(RAX), Imm(63)),
	)
	if m.Regs[RAX] != 1 {
		t.Errorf("shr: rax = %#x", m.Regs[RAX])
	}
	m = runSnippet(t, map[Reg]uint64{RAX: 3},
		MkInst(SHL, R64(RAX), Imm(4)),
	)
	if m.Regs[RAX] != 48 {
		t.Errorf("shl: rax = %d", m.Regs[RAX])
	}
}

func TestEmulatorMovExtend(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RBX: 0xFF},
		MkInst(MOVZX, R32(RAX), R8L(RBX)),
	)
	if m.Regs[RAX] != 0xFF {
		t.Errorf("movzx: rax = %#x", m.Regs[RAX])
	}
	m = runSnippet(t, map[Reg]uint64{RBX: 0x80},
		MkInst(MOVSX, R64(RAX), R8L(RBX)),
	)
	if int64(m.Regs[RAX]) != -128 {
		t.Errorf("movsx: rax = %d", int64(m.Regs[RAX]))
	}
}

func TestEmulatorLea(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RBX: 100, RCX: 5},
		MkInst(LEA, R64(RAX), MemIdx(RBX, RCX, 8, 3, Width8)),
	)
	if m.Regs[RAX] != 143 {
		t.Errorf("lea: rax = %d, want 143", m.Regs[RAX])
	}
}

func TestEmulatorMemory(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RDI: 0x1000, RAX: 0x1122_3344_5566_7788},
		MkInst(MOV, Mem(RDI, 0, Width8), R64(RAX)),
		MkInst(MOV, R32(RBX), Mem(RDI, 0, Width4)),
		MkInst(MOVZX, R32(RCX), Mem(RDI, 7, Width1)),
	)
	if m.Regs[RBX] != 0x5566_7788 {
		t.Errorf("dword load: rbx = %#x", m.Regs[RBX])
	}
	if m.Regs[RCX] != 0x11 {
		t.Errorf("byte load: rcx = %#x", m.Regs[RCX])
	}
}

func TestEmulatorPushPop(t *testing.T) {
	m := runSnippet(t, map[Reg]uint64{RBP: 0xdead},
		MkUnary(PUSH, R64(RBP)),
		MkInst(MOV, R64(RBP), Imm(0)),
		MkUnary(POP, R64(RBP)),
	)
	if m.Regs[RBP] != 0xdead {
		t.Errorf("push/pop: rbp = %#x", m.Regs[RBP])
	}
	if m.Regs[RSP] != StackTop {
		t.Errorf("rsp not restored: %#x", m.Regs[RSP])
	}
}

func TestEmulatorBranchLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	p := &Proc{Name: "sum", Insts: []Inst{
		MkInst(XOR, R64(RAX), R64(RAX)),
		MkInst(MOV, R64(RCX), Imm(10)),
		Label("top"),
		MkInst(ADD, R64(RAX), R64(RCX)),
		MkUnary(DEC, R64(RCX)),
		MkInst(TEST, R64(RCX), R64(RCX)),
		MkJcc(NE, "top"),
		{Op: RET},
	}}
	m := NewMachine()
	m.AddProc(p)
	got, err := m.Run("sum")
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestEmulatorCall(t *testing.T) {
	callee := &Proc{Name: "double", Insts: []Inst{
		MkInst(LEA, R64(RAX), MemIdx(RDI, RDI, 1, 0, Width8)),
		{Op: RET},
	}}
	caller := &Proc{Name: "main", Insts: []Inst{
		MkInst(MOV, R64(RDI), Imm(21)),
		MkCall("double"),
		{Op: RET},
	}}
	m := NewMachine()
	m.AddProc(callee)
	m.AddProc(caller)
	got, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("call: got %d, want 42", got)
	}
}

func TestEmulatorExtern(t *testing.T) {
	m := NewMachine()
	m.AddExtern("triple", func(m *Machine) uint64 { return m.Regs[RDI] * 3 })
	m.AddProc(&Proc{Name: "main", Insts: []Inst{
		MkInst(MOV, R64(RDI), Imm(14)),
		MkCall("triple"),
		{Op: RET},
	}})
	got, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("extern: got %d, want 42", got)
	}
}

func TestEmulatorStepLimit(t *testing.T) {
	m := NewMachine()
	m.SetMaxSteps(100)
	m.AddProc(&Proc{Name: "spin", Insts: []Inst{
		Label("top"), MkJump("top"), {Op: RET},
	}})
	if _, err := m.Run("spin"); err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestEmulatorDivideByZero(t *testing.T) {
	m := NewMachine()
	m.AddProc(&Proc{Name: "dz", Insts: []Inst{
		MkInst(MOV, R64(RAX), Imm(1)),
		MkInst(XOR, R64(RCX), R64(RCX)),
		{Op: CQO},
		MkUnary(IDIV, R64(RCX)),
		{Op: RET},
	}})
	if _, err := m.Run("dz"); err == nil {
		t.Error("divide by zero not reported")
	}
}

func TestEmulatorUnknownCall(t *testing.T) {
	m := NewMachine()
	m.AddProc(&Proc{Name: "main", Insts: []Inst{MkCall("nowhere"), {Op: RET}}})
	if _, err := m.Run("main"); err == nil {
		t.Error("unknown callee not reported")
	}
}

// Property: emulated binary ops agree with Go semantics at 64 bits.
func TestQuickBinaryOpSemantics(t *testing.T) {
	type check struct {
		op Op
		fn func(a, b uint64) uint64
	}
	checks := []check{
		{ADD, func(a, b uint64) uint64 { return a + b }},
		{SUB, func(a, b uint64) uint64 { return a - b }},
		{AND, func(a, b uint64) uint64 { return a & b }},
		{OR, func(a, b uint64) uint64 { return a | b }},
		{XOR, func(a, b uint64) uint64 { return a ^ b }},
		{IMUL, func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) }},
	}
	for _, c := range checks {
		f := func(a, b uint64) bool {
			m := runSnippet(t, map[Reg]uint64{RAX: a, RBX: b}, MkInst(c.op, R64(RAX), R64(RBX)))
			return m.Regs[RAX] == c.fn(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// Property: CMP followed by SETcc computes the Go comparison.
func TestQuickCompareSemantics(t *testing.T) {
	type cmpCheck struct {
		cc CC
		fn func(a, b int64) bool
	}
	checks := []cmpCheck{
		{E, func(a, b int64) bool { return a == b }},
		{NE, func(a, b int64) bool { return a != b }},
		{L, func(a, b int64) bool { return a < b }},
		{LE, func(a, b int64) bool { return a <= b }},
		{G, func(a, b int64) bool { return a > b }},
		{GE, func(a, b int64) bool { return a >= b }},
		{B, func(a, b int64) bool { return uint64(a) < uint64(b) }},
		{AE, func(a, b int64) bool { return uint64(a) >= uint64(b) }},
	}
	for _, c := range checks {
		f := func(a, b int64) bool {
			m := runSnippet(t, map[Reg]uint64{RAX: uint64(a), RBX: uint64(b)},
				MkInst(CMP, R64(RAX), R64(RBX)),
				Inst{Op: SETCC, CC: c.cc, Dst: R8L(RCX)},
			)
			want := uint64(0)
			if c.fn(a, b) {
				want = 1
			}
			return m.Regs[RCX]&0xFF == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("set%v: %v", c.cc, err)
		}
	}
}

// Property: print → parse round-trips random instructions.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randReg := func() Reg { return Reg(rng.Intn(NumRegs)) }
	widths := []Width{Width1, Width2, Width4, Width8}
	randOperand := func() Operand {
		switch rng.Intn(3) {
		case 0:
			return R(randReg(), widths[rng.Intn(4)])
		case 1:
			return Imm(rng.Int63n(1 << 20))
		default:
			o := Mem(randReg(), rng.Int63n(256)-128, widths[rng.Intn(4)])
			if rng.Intn(2) == 0 {
				o.Index = randReg()
				o.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
			}
			return o
		}
	}
	ops := []Op{MOV, ADD, SUB, AND, OR, XOR, CMP}
	for i := 0; i < 500; i++ {
		in := MkInst(ops[rng.Intn(len(ops))], randOperand(), randOperand())
		if in.Dst.Kind == KindImm {
			in.Dst = R64(RAX) // immediates are not valid destinations
		}
		if in.Dst.Kind == KindMem && in.Src.Kind == KindMem {
			in.Src = R64(RBX) // mem,mem is not encodable
		}
		in.Src.Width = in.Dst.Width
		p := &Proc{Name: "rt", Insts: []Inst{in, {Op: RET}}}
		got, err := ParseProc(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", in, err)
		}
		if got.Insts[0].String() != in.String() {
			t.Fatalf("round trip changed %q to %q", in, got.Insts[0])
		}
	}
}
