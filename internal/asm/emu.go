package asm

import (
	"errors"
	"fmt"
)

// Flags holds the status flags the subset ISA models.
type Flags struct {
	ZF, SF, OF, CF bool
}

// Extern is a Go implementation of an external procedure. It receives the
// machine so it can read argument registers and memory, and returns the
// value to place in rax.
type Extern func(m *Machine) uint64

// Machine is an emulated processor with sparse byte-addressed memory.
// The zero value is not ready to use; call NewMachine.
type Machine struct {
	Regs  [NumRegs]uint64
	Flags Flags
	mem   map[uint64]byte

	procs    map[string]*Proc
	externs  map[string]Extern
	steps    int
	maxSteps int
}

// ErrStepLimit is returned when execution exceeds the step budget,
// indicating a runaway loop.
var ErrStepLimit = errors.New("asm: step limit exceeded")

// StackTop is the initial rsp value.
const StackTop = 0x7fff_0000

// NewMachine returns a machine with rsp initialized and a default step
// budget of one million instructions.
func NewMachine() *Machine {
	m := &Machine{
		mem:      make(map[uint64]byte),
		procs:    make(map[string]*Proc),
		externs:  make(map[string]Extern),
		maxSteps: 1_000_000,
	}
	m.Regs[RSP] = StackTop
	return m
}

// SetMaxSteps overrides the instruction budget.
func (m *Machine) SetMaxSteps(n int) { m.maxSteps = n }

// AddProc registers a procedure so CALLs to its name execute it.
func (m *Machine) AddProc(p *Proc) { m.procs[p.Name] = p }

// AddExtern registers a Go handler for CALLs to name.
func (m *Machine) AddExtern(name string, fn Extern) { m.externs[name] = fn }

// ReadMem reads w bytes little-endian at addr. Unwritten memory reads as 0.
func (m *Machine) ReadMem(addr uint64, w Width) uint64 {
	var v uint64
	for i := uint(0); i < uint(w); i++ {
		v |= uint64(m.mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteMem writes the low w bytes of v little-endian at addr.
func (m *Machine) WriteMem(addr uint64, w Width, v uint64) {
	for i := uint(0); i < uint(w); i++ {
		m.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// WriteBytes copies b into memory at addr.
func (m *Machine) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.mem[addr+uint64(i)] = c
	}
}

// ReadBytes copies n bytes of memory starting at addr.
func (m *Machine) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.mem[addr+uint64(i)]
	}
	return b
}

// effAddr computes the effective address of a memory operand.
func (m *Machine) effAddr(o Operand) uint64 {
	var a uint64
	if o.Base != NoReg {
		a = m.Regs[o.Base]
	}
	if o.Index != NoReg {
		a += m.Regs[o.Index] * uint64(o.Scale)
	}
	return a + uint64(o.Disp)
}

// readOp reads an operand value zero-extended to 64 bits.
func (m *Machine) readOp(o Operand) uint64 {
	switch o.Kind {
	case KindReg:
		return m.Regs[o.Reg] & o.Width.Mask()
	case KindImm:
		return uint64(o.Imm) & o.Width.Mask()
	case KindMem:
		return m.ReadMem(m.effAddr(o), o.Width)
	}
	return 0
}

// writeOp writes v to a register or memory operand with x86 width rules:
// 32-bit register writes zero the upper half; 8/16-bit writes merge.
func (m *Machine) writeOp(o Operand, v uint64) {
	switch o.Kind {
	case KindReg:
		switch o.Width {
		case Width8:
			m.Regs[o.Reg] = v
		case Width4:
			m.Regs[o.Reg] = v & 0xFFFF_FFFF
		default:
			mask := o.Width.Mask()
			m.Regs[o.Reg] = (m.Regs[o.Reg] &^ mask) | (v & mask)
		}
	case KindMem:
		m.WriteMem(m.effAddr(o), o.Width, v)
	}
}

func signBit(v uint64, w Width) bool { return v>>(w.Bits()-1)&1 == 1 }

// signExtend sign-extends the low w bytes of v to 64 bits.
func signExtend(v uint64, w Width) uint64 {
	sh := 64 - w.Bits()
	return uint64(int64(v<<sh) >> sh)
}

func (m *Machine) setLogicFlags(res uint64, w Width) {
	res &= w.Mask()
	m.Flags = Flags{ZF: res == 0, SF: signBit(res, w)}
}

func (m *Machine) setAddFlags(a, b, res uint64, w Width) {
	res &= w.Mask()
	m.Flags.ZF = res == 0
	m.Flags.SF = signBit(res, w)
	m.Flags.CF = res < (a & w.Mask())
	m.Flags.OF = signBit(a, w) == signBit(b, w) && signBit(res, w) != signBit(a, w)
}

func (m *Machine) setSubFlags(a, b, res uint64, w Width) {
	a &= w.Mask()
	b &= w.Mask()
	res &= w.Mask()
	m.Flags.ZF = res == 0
	m.Flags.SF = signBit(res, w)
	m.Flags.CF = a < b
	m.Flags.OF = signBit(a, w) != signBit(b, w) && signBit(res, w) != signBit(a, w)
}

// cond evaluates a condition code against the current flags.
func (m *Machine) cond(c CC) bool {
	f := m.Flags
	switch c {
	case E:
		return f.ZF
	case NE:
		return !f.ZF
	case L:
		return f.SF != f.OF
	case LE:
		return f.ZF || f.SF != f.OF
	case G:
		return !f.ZF && f.SF == f.OF
	case GE:
		return f.SF == f.OF
	case B:
		return f.CF
	case BE:
		return f.CF || f.ZF
	case A:
		return !f.CF && !f.ZF
	case AE:
		return !f.CF
	case S:
		return f.SF
	case NS:
		return !f.SF
	}
	return false
}

// Run executes the named procedure to its RET and returns rax.
func (m *Machine) Run(name string) (uint64, error) {
	if err := m.call(name); err != nil {
		return 0, err
	}
	return m.Regs[RAX], nil
}

func (m *Machine) call(name string) error {
	if fn, ok := m.externs[name]; ok {
		m.Regs[RAX] = fn(m)
		return nil
	}
	p, ok := m.procs[name]
	if !ok {
		return fmt.Errorf("asm: unknown procedure %q", name)
	}
	labels := make(map[string]int)
	for i, in := range p.Insts {
		if in.Op == LABEL {
			labels[in.Sym] = i
		}
	}
	pc := 0
	for pc < len(p.Insts) {
		if m.steps++; m.steps > m.maxSteps {
			return ErrStepLimit
		}
		in := p.Insts[pc]
		next := pc + 1
		switch in.Op {
		case LABEL, NOP:
		case MOV:
			m.writeOp(in.Dst, m.readOp(in.Src))
		case MOVZX:
			m.writeOp(in.Dst, m.readOp(in.Src)) // readOp zero-extends
		case MOVSX:
			m.writeOp(in.Dst, signExtend(m.readOp(in.Src), in.Src.Width))
		case LEA:
			m.writeOp(in.Dst, m.effAddr(in.Src))
		case ADD:
			a, b := m.readOp(in.Dst), m.readOp(in.Src)
			res := a + b
			m.setAddFlags(a, b, res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case SUB:
			a, b := m.readOp(in.Dst), m.readOp(in.Src)
			res := a - b
			m.setSubFlags(a, b, res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case IMUL:
			a, b := m.readOp(in.Dst), m.readOp(in.Src)
			w := in.Dst.Width
			res := uint64(int64(signExtend(a, w)) * int64(signExtend(b, w)))
			m.setLogicFlags(res, w)
			m.writeOp(in.Dst, res)
		case NEG:
			a := m.readOp(in.Dst)
			res := -a
			m.setSubFlags(0, a, res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case NOT:
			m.writeOp(in.Dst, ^m.readOp(in.Dst))
		case AND:
			res := m.readOp(in.Dst) & m.readOp(in.Src)
			m.setLogicFlags(res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case OR:
			res := m.readOp(in.Dst) | m.readOp(in.Src)
			m.setLogicFlags(res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case XOR:
			res := m.readOp(in.Dst) ^ m.readOp(in.Src)
			m.setLogicFlags(res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case SHL:
			sh := m.readOp(in.Src) & 63
			res := m.readOp(in.Dst) << sh
			m.setLogicFlags(res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case SHR:
			sh := m.readOp(in.Src) & 63
			res := m.readOp(in.Dst) >> sh
			m.setLogicFlags(res, in.Dst.Width)
			m.writeOp(in.Dst, res)
		case SAR:
			sh := m.readOp(in.Src) & 63
			w := in.Dst.Width
			res := uint64(int64(signExtend(m.readOp(in.Dst), w)) >> sh)
			m.setLogicFlags(res, w)
			m.writeOp(in.Dst, res)
		case INC:
			a := m.readOp(in.Dst)
			res := a + 1
			cf := m.Flags.CF // INC preserves CF
			m.setAddFlags(a, 1, res, in.Dst.Width)
			m.Flags.CF = cf
			m.writeOp(in.Dst, res)
		case DEC:
			a := m.readOp(in.Dst)
			res := a - 1
			cf := m.Flags.CF // DEC preserves CF
			m.setSubFlags(a, 1, res, in.Dst.Width)
			m.Flags.CF = cf
			m.writeOp(in.Dst, res)
		case CMP:
			a, b := m.readOp(in.Dst), m.readOp(in.Src)
			m.setSubFlags(a, b, a-b, in.Dst.Width)
		case TEST:
			m.setLogicFlags(m.readOp(in.Dst)&m.readOp(in.Src), in.Dst.Width)
		case PUSH:
			m.Regs[RSP] -= 8
			m.WriteMem(m.Regs[RSP], Width8, m.readOp(in.Dst))
		case POP:
			m.writeOp(in.Dst, m.ReadMem(m.Regs[RSP], Width8))
			m.Regs[RSP] += 8
		case CQO:
			m.Regs[RDX] = uint64(int64(m.Regs[RAX]) >> 63)
		case IDIV:
			d := int64(m.readOp(in.Dst))
			if d == 0 {
				return fmt.Errorf("asm: divide by zero in %s", p.Name)
			}
			n := int64(m.Regs[RAX])
			m.Regs[RAX] = uint64(n / d)
			m.Regs[RDX] = uint64(n % d)
		case CALL:
			if err := m.call(in.Sym); err != nil {
				return err
			}
		case RET:
			return nil
		case JMP:
			t, ok := labels[in.Sym]
			if !ok {
				return fmt.Errorf("asm: unknown label %q in %s", in.Sym, p.Name)
			}
			next = t
		case JCC:
			if m.cond(in.CC) {
				t, ok := labels[in.Sym]
				if !ok {
					return fmt.Errorf("asm: unknown label %q in %s", in.Sym, p.Name)
				}
				next = t
			}
		case SETCC:
			v := uint64(0)
			if m.cond(in.CC) {
				v = 1
			}
			m.writeOp(in.Dst, v)
		case CMOVCC:
			if m.cond(in.CC) {
				m.writeOp(in.Dst, m.readOp(in.Src))
			}
		default:
			return fmt.Errorf("asm: cannot execute %s", in)
		}
		pc = next
	}
	return nil
}
