package asm

import (
	"fmt"
	"strings"
)

// String renders the operand in Intel syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.Name(o.Width)
	case KindImm:
		if o.Imm >= 0 && o.Imm < 10 {
			return fmt.Sprintf("%d", o.Imm)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", uint64(-o.Imm))
		}
		return fmt.Sprintf("0x%x", uint64(o.Imm))
	case KindMem:
		var b strings.Builder
		b.WriteString(sizePrefix(o.Width))
		b.WriteByte('[')
		wrote := false
		if o.Base != NoReg {
			b.WriteString(o.Base.Name(Width8))
			wrote = true
		}
		if o.Index != NoReg {
			if wrote {
				b.WriteByte('+')
			}
			b.WriteString(o.Index.Name(Width8))
			if o.Scale > 1 {
				fmt.Fprintf(&b, "*%d", o.Scale)
			}
			wrote = true
		}
		if o.Disp != 0 || !wrote {
			if o.Disp < 0 {
				fmt.Fprintf(&b, "-0x%x", uint64(-o.Disp))
			} else {
				if wrote {
					b.WriteByte('+')
				}
				fmt.Fprintf(&b, "0x%x", uint64(o.Disp))
			}
		}
		b.WriteByte(']')
		return b.String()
	default:
		return "<none>"
	}
}

func sizePrefix(w Width) string {
	switch w {
	case Width1:
		return "byte "
	case Width2:
		return "word "
	case Width4:
		return "dword "
	default:
		return "qword "
	}
}

// String renders the instruction in Intel syntax; LABEL pseudo-instructions
// render as "name:".
func (i Inst) String() string {
	switch i.Op {
	case LABEL:
		return i.Sym + ":"
	case JMP, JCC, CALL:
		return i.Mnemonic() + " " + i.Sym
	case RET, NOP, CQO:
		return i.Mnemonic()
	}
	if i.Src.IsZero() {
		return i.Mnemonic() + " " + i.Dst.String()
	}
	return i.Mnemonic() + " " + i.Dst.String() + ", " + i.Src.String()
}

// String renders the procedure as assembler text parsable by Parse.
func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s\n", p.Name)
	for _, in := range p.Insts {
		if in.Op == LABEL {
			fmt.Fprintf(&b, "%s\n", in)
		} else {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	b.WriteString("endp\n")
	return b.String()
}
