package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// mnemonics maps full mnemonic text (including condition suffixes) to
// opcode and condition.
var mnemonics = func() map[string]Inst {
	m := make(map[string]Inst)
	plain := []Op{NOP, MOV, MOVZX, MOVSX, LEA, ADD, SUB, IMUL, NEG, NOT,
		AND, OR, XOR, SHL, SHR, SAR, INC, DEC, CMP, TEST, PUSH, POP,
		CALL, RET, JMP, CQO, IDIV}
	for _, op := range plain {
		m[op.String()] = Inst{Op: op}
	}
	for cc := CC(0); cc < numCCs; cc++ {
		m["j"+cc.String()] = Inst{Op: JCC, CC: cc}
		m["set"+cc.String()] = Inst{Op: SETCC, CC: cc}
		m["cmov"+cc.String()] = Inst{Op: CMOVCC, CC: cc}
	}
	return m
}()

// regByName maps every register name at every width to (Reg, Width).
var regByName = func() map[string]Operand {
	m := make(map[string]Operand)
	for r := Reg(0); r < NumRegs; r++ {
		for _, w := range []Width{Width1, Width2, Width4, Width8} {
			m[r.Name(w)] = R(r, w)
		}
	}
	return m
}()

// Parse reads assembler text in the format emitted by Proc.String and
// returns the procedures it contains.
func Parse(src string) ([]*Proc, error) {
	var procs []*Proc
	var cur *Proc
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "proc "):
			if cur != nil {
				return nil, fail("nested proc")
			}
			cur = &Proc{Name: strings.TrimSpace(strings.TrimPrefix(line, "proc "))}
		case line == "endp":
			if cur == nil {
				return nil, fail("endp outside proc")
			}
			procs = append(procs, cur)
			cur = nil
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fail("label outside proc")
			}
			cur.Insts = append(cur.Insts, Label(strings.TrimSuffix(line, ":")))
		default:
			if cur == nil {
				return nil, fail("instruction outside proc")
			}
			inst, err := parseInst(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Insts = append(cur.Insts, inst)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated proc %q", cur.Name)
	}
	return procs, nil
}

// ParseProc parses text containing exactly one procedure.
func ParseProc(src string) (*Proc, error) {
	procs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(procs) != 1 {
		return nil, fmt.Errorf("expected 1 procedure, found %d", len(procs))
	}
	return procs[0], nil
}

func parseInst(line string) (Inst, error) {
	mnem, rest, _ := strings.Cut(line, " ")
	proto, ok := mnemonics[mnem]
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	inst := proto
	rest = strings.TrimSpace(rest)
	switch inst.Op {
	case NOP, RET, CQO:
		if rest != "" {
			return Inst{}, fmt.Errorf("%s takes no operands", mnem)
		}
		return inst, nil
	case JMP, JCC, CALL:
		if rest == "" {
			return Inst{}, fmt.Errorf("%s needs a target", mnem)
		}
		inst.Sym = rest
		return inst, nil
	}
	ops, err := splitOperands(rest)
	if err != nil {
		return Inst{}, err
	}
	switch len(ops) {
	case 1:
		inst.Dst, err = parseOperand(ops[0])
	case 2:
		inst.Dst, err = parseOperand(ops[0])
		if err == nil {
			inst.Src, err = parseOperand(ops[1])
		}
	default:
		return Inst{}, fmt.Errorf("%s: expected 1 or 2 operands, got %d", mnem, len(ops))
	}
	if err != nil {
		return Inst{}, err
	}
	// Immediates adopt the width of a register/memory destination.
	if inst.Src.Kind == KindImm && inst.Dst.Kind != KindNone {
		inst.Src.Width = inst.Dst.Width
	}
	return inst, nil
}

func splitOperands(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing operands")
	}
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

func parseOperand(s string) (Operand, error) {
	if op, ok := regByName[s]; ok {
		return op, nil
	}
	w := Width8
	for prefix, pw := range map[string]Width{"byte ": Width1, "word ": Width2, "dword ": Width4, "qword ": Width8} {
		if strings.HasPrefix(s, prefix) {
			w = pw
			s = strings.TrimSpace(strings.TrimPrefix(s, prefix))
			break
		}
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		return parseMem(s[1:len(s)-1], w)
	}
	v, err := parseImm(s)
	if err != nil {
		return Operand{}, err
	}
	return Imm(v), nil
}

func parseImm(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseMem parses the inside of a bracketed memory operand:
// base, base+disp, base+index*scale+disp, index*scale+disp, disp.
func parseMem(s string, w Width) (Operand, error) {
	op := Operand{Kind: KindMem, Width: w, Base: NoReg, Index: NoReg, Scale: 1}
	// Split into +/- terms.
	var terms []string
	start := 0
	for i := 0; i < len(s); i++ {
		if (s[i] == '+' || s[i] == '-') && i > start {
			terms = append(terms, strings.TrimSpace(s[start:i]))
			if s[i] == '-' {
				start = i // keep the minus with the term
			} else {
				start = i + 1
			}
		}
	}
	terms = append(terms, strings.TrimSpace(s[start:]))
	for _, t := range terms {
		if t == "" {
			continue
		}
		if reg, mul, ok := strings.Cut(t, "*"); ok {
			r, isReg := regByName[strings.TrimSpace(reg)]
			if !isReg || r.Width != Width8 {
				return Operand{}, fmt.Errorf("bad index register %q", reg)
			}
			sc, err := strconv.Atoi(strings.TrimSpace(mul))
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return Operand{}, fmt.Errorf("bad scale %q", mul)
			}
			op.Index = r.Reg
			op.Scale = uint8(sc)
			continue
		}
		if r, isReg := regByName[t]; isReg {
			if r.Width != Width8 {
				return Operand{}, fmt.Errorf("memory operand register %q must be 64-bit", t)
			}
			if op.Base == NoReg {
				op.Base = r.Reg
			} else if op.Index == NoReg {
				op.Index = r.Reg
			} else {
				return Operand{}, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		v, err := parseImm(t)
		if err != nil {
			return Operand{}, fmt.Errorf("bad memory term %q", t)
		}
		op.Disp += v
	}
	return op, nil
}
