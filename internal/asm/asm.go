// Package asm defines a synthetic x86-64 subset: registers with
// 8/16/32/64-bit views, flags, memory operands, an instruction set large
// enough to express the output of optimizing C compilers, an Intel-syntax
// printer and parser, and a machine emulator.
//
// The package stands in for real binaries in the Esh reproduction: the
// simulated toolchains in package compile emit this ISA, and package lift
// translates it to the IVL that strand extraction and the verifier consume.
package asm

import "fmt"

// Reg names one of the sixteen general-purpose registers. A Reg value
// identifies the full 64-bit register; operand widths select a view
// (e.g. RAX viewed at Width4 prints as eax).
type Reg uint8

// General purpose registers, in encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs = 16
	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xFF
)

// Width is an operand width in bytes: 1, 2, 4 or 8.
type Width uint8

// Operand widths.
const (
	Width1 Width = 1
	Width2 Width = 2
	Width4 Width = 4
	Width8 Width = 8
)

// Bits returns the width in bits.
func (w Width) Bits() uint { return uint(w) * 8 }

// Mask returns the bitmask selecting the low w bytes of a 64-bit value.
func (w Width) Mask() uint64 {
	if w >= Width8 {
		return ^uint64(0)
	}
	return (uint64(1) << w.Bits()) - 1
}

var regNames64 = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}
var regNames32 = [NumRegs]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}
var regNames16 = [NumRegs]string{
	"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
}
var regNames8 = [NumRegs]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
}

// Name returns the Intel-syntax name of the register viewed at width w.
func (r Reg) Name(w Width) string {
	if r >= NumRegs {
		return fmt.Sprintf("reg%d", uint8(r))
	}
	switch w {
	case Width1:
		return regNames8[r]
	case Width2:
		return regNames16[r]
	case Width4:
		return regNames32[r]
	default:
		return regNames64[r]
	}
}

// String prints the full 64-bit register name.
func (r Reg) String() string { return r.Name(Width8) }

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. JCC, SETCC and CMOVCC carry a condition code in
// Inst.CC.
const (
	NOP Op = iota
	MOV
	MOVZX
	MOVSX
	LEA
	ADD
	SUB
	IMUL // two-operand form: dst = dst * src
	NEG
	NOT
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	INC
	DEC
	CMP
	TEST
	PUSH
	POP
	CALL
	RET
	JMP
	JCC
	SETCC
	CMOVCC
	CQO  // sign-extend rax into rdx:rax
	IDIV // signed divide rdx:rax by operand; quotient rax, remainder rdx
	LABEL
	numOps
)

var opNames = [numOps]string{
	NOP: "nop", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	ADD: "add", SUB: "sub", IMUL: "imul", NEG: "neg", NOT: "not",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SAR: "sar",
	INC: "inc", DEC: "dec", CMP: "cmp", TEST: "test", PUSH: "push",
	POP: "pop", CALL: "call", RET: "ret", JMP: "jmp", JCC: "j",
	SETCC: "set", CMOVCC: "cmov", CQO: "cqo", IDIV: "idiv", LABEL: "label",
}

// String returns the lowercase mnemonic stem (condition suffixes are
// appended by Inst.String).
func (o Op) String() string {
	if o >= numOps {
		return fmt.Sprintf("op%d", uint8(o))
	}
	return opNames[o]
}

// CC is a condition code for JCC, SETCC and CMOVCC.
type CC uint8

// Condition codes.
const (
	E  CC = iota // equal (ZF)
	NE           // not equal
	L            // signed less
	LE           // signed less-or-equal
	G            // signed greater
	GE           // signed greater-or-equal
	B            // unsigned below (CF)
	BE           // unsigned below-or-equal
	A            // unsigned above
	AE           // unsigned above-or-equal
	S            // sign (SF)
	NS           // no sign
	numCCs
)

var ccNames = [numCCs]string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"}

// String returns the condition suffix, e.g. "le".
func (c CC) String() string {
	if c >= numCCs {
		return fmt.Sprintf("cc%d", uint8(c))
	}
	return ccNames[c]
}

// Negate returns the inverse condition.
func (c CC) Negate() CC {
	switch c {
	case E:
		return NE
	case NE:
		return E
	case L:
		return GE
	case LE:
		return G
	case G:
		return LE
	case GE:
		return L
	case B:
		return AE
	case BE:
		return A
	case A:
		return BE
	case AE:
		return B
	case S:
		return NS
	default:
		return S
	}
}

// OperandKind discriminates Operand variants.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Operand is a register, immediate or memory operand. The zero value has
// KindNone and marks an absent operand slot.
type Operand struct {
	Kind  OperandKind
	Width Width // operand width in bytes; for KindMem, the access width
	Reg   Reg   // KindReg: the register
	Imm   int64 // KindImm: the immediate value

	// KindMem: [Base + Index*Scale + Disp]. Base or Index may be NoReg.
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int64
}

// R returns a register operand of width w.
func R(r Reg, w Width) Operand { return Operand{Kind: KindReg, Width: w, Reg: r} }

// R64 returns a 64-bit register operand.
func R64(r Reg) Operand { return R(r, Width8) }

// R32 returns a 32-bit register operand.
func R32(r Reg) Operand { return R(r, Width4) }

// R8L returns an 8-bit (low byte) register operand.
func R8L(r Reg) Operand { return R(r, Width1) }

// Imm returns an immediate operand. Immediates default to Width8.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Width: Width8, Imm: v} }

// Mem returns a memory operand [base+disp] with access width w.
func Mem(base Reg, disp int64, w Width) Operand {
	return Operand{Kind: KindMem, Width: w, Base: base, Index: NoReg, Disp: disp}
}

// MemIdx returns a memory operand [base+index*scale+disp] with access width w.
func MemIdx(base, index Reg, scale uint8, disp int64, w Width) Operand {
	return Operand{Kind: KindMem, Width: w, Base: base, Index: index, Scale: scale, Disp: disp}
}

// IsZero reports whether the operand slot is unused.
func (o Operand) IsZero() bool { return o.Kind == KindNone }

// Inst is a single instruction. Dst and Src follow Intel operand order:
// op dst, src. Unary ops use Dst only. Control transfers name their
// target in Sym (a label or procedure name).
type Inst struct {
	Op  Op
	CC  CC // condition for JCC/SETCC/CMOVCC
	Dst Operand
	Src Operand
	Sym string // JMP/JCC/CALL target or LABEL name
}

// Proc is a procedure: a name and a linear instruction sequence in which
// LABEL pseudo-instructions define branch targets.
//
// Source records provenance (package, source procedure, toolchain) so
// corpora can mark ground truth; it plays no role in analysis.
type Proc struct {
	Name   string
	Insts  []Inst
	Source Provenance
}

// Provenance records where a binary procedure came from. Analysis code
// must not read it; evaluation code uses it as ground truth.
type Provenance struct {
	Package   string // e.g. "openssl-1.0.1f"
	SourceSym string // source-level procedure name
	Toolchain string // e.g. "gcc-4.9"
	OptLevel  string // e.g. "-O2"
	Patched   bool
}

// Key returns a human-readable identity string for the procedure origin.
func (p Provenance) Key() string {
	s := p.Package + ":" + p.SourceSym + "@" + p.Toolchain + p.OptLevel
	if p.Patched {
		s += "+patch"
	}
	return s
}

// Label returns a LABEL pseudo-instruction.
func Label(name string) Inst { return Inst{Op: LABEL, Sym: name} }

// MkInst builds a two-operand instruction.
func MkInst(op Op, dst, src Operand) Inst { return Inst{Op: op, Dst: dst, Src: src} }

// MkUnary builds a one-operand instruction.
func MkUnary(op Op, dst Operand) Inst { return Inst{Op: op, Dst: dst} }

// MkJump builds an unconditional jump to label sym.
func MkJump(sym string) Inst { return Inst{Op: JMP, Sym: sym} }

// MkJcc builds a conditional jump to label sym.
func MkJcc(cc CC, sym string) Inst { return Inst{Op: JCC, CC: cc, Sym: sym} }

// MkCall builds a call to procedure sym.
func MkCall(sym string) Inst { return Inst{Op: CALL, Sym: sym} }

// Mnemonic returns the full mnemonic including any condition suffix.
func (i Inst) Mnemonic() string {
	switch i.Op {
	case JCC, SETCC, CMOVCC:
		return i.Op.String() + i.CC.String()
	default:
		return i.Op.String()
	}
}

// IsBranch reports whether the instruction may transfer control to a label.
func (i Inst) IsBranch() bool { return i.Op == JMP || i.Op == JCC }

// IsTerminator reports whether the instruction ends a basic block.
func (i Inst) IsTerminator() bool { return i.IsBranch() || i.Op == RET }

// Writes reports whether the instruction writes its Dst operand.
func (i Inst) Writes() bool {
	switch i.Op {
	case MOV, MOVZX, MOVSX, LEA, ADD, SUB, IMUL, NEG, NOT, AND, OR, XOR,
		SHL, SHR, SAR, INC, DEC, POP, SETCC, CMOVCC:
		return true
	}
	return false
}

// NumInsts returns the number of real (non-LABEL) instructions.
func (p *Proc) NumInsts() int {
	n := 0
	for _, in := range p.Insts {
		if in.Op != LABEL {
			n++
		}
	}
	return n
}
