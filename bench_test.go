// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks for the pipeline stages. The
// experiment benches run at Small scale so a full -bench=. pass stays
// tractable; run the esheval command with -scale full for the
// paper-sized numbers (recorded in EXPERIMENTS.md).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/lift"
	"repro/internal/minic"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/internal/smt"
	"repro/internal/strand"
	"repro/internal/telemetry"
	"repro/internal/vcp"
)

func benchCfg() experiments.Config {
	return experiments.Config{Scale: experiments.Small}
}

// BenchmarkTable1 regenerates the eight-CVE search table (S-VCP, S-LOG,
// Esh with FP/ROC/CROC per row).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable2 regenerates the TRACY-vs-Esh aspect comparison.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 7 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTable3 regenerates the BinDiff whole-library evaluation.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFigure5 regenerates the Heartbleed GES bar list.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bars) == 0 {
			b.Fatal("no bars")
		}
	}
}

// BenchmarkFigure6 regenerates the all-vs-all GES heat map.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Matrix) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkCensus regenerates the §6.2 common-strand analysis.
func BenchmarkCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Census(benchCfg(), 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSigmoidK runs the k-ablation slice of the ablation
// study (design choice from §3.3.1).
func BenchmarkAblationSigmoidK(b *testing.B) {
	targets, err := benchCfg().BuildCorpus()
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.Vulns()[0]
	q, err := corpus.CompileVuln(v, benchCfg().QueryToolchain(), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []float64{5, 10, 20} {
			db := core.NewDB(core.Options{SigmoidK: k})
			for _, p := range targets {
				if err := db.AddTarget(p); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- pipeline micro-benchmarks ---------------------------------------------

var microSrc = `
func bench_fn(buf, len, seed) {
	var acc = seed;
	var i = 0;
	while (i < len) {
		var v = load8(buf + i);
		acc = acc * 33 + v;
		acc = acc ^ (acc >>u 7);
		i = i + 1;
	}
	store64(buf + len, acc);
	return acc;
}`

func microProc(b *testing.B, tcName string) *asm.Proc {
	b.Helper()
	tc, ok := compile.ByName(tcName)
	if !ok {
		b.Fatal("no toolchain")
	}
	p, err := compile.Compile(minic.MustParse(microSrc), "bench_fn", tc, compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkCompile measures the simulated toolchain.
func BenchmarkCompile(b *testing.B) {
	prog := minic.MustParse(microSrc)
	tc := compile.Toolchains()[2]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, "bench_fn", tc, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLift measures disassembly-to-IVL lifting.
func BenchmarkLift(b *testing.B) {
	p := microProc(b, "gcc-4.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := cfg.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lift.LiftProc(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrandExtraction measures Algorithm 1.
func BenchmarkStrandExtraction(b *testing.B) {
	p := microProc(b, "gcc-4.9")
	g, _ := cfg.Build(p)
	lp, _ := lift.LiftProc(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := strand.FromProc(lp); len(got) == 0 {
			b.Fatal("no strands")
		}
	}
}

// BenchmarkVCP measures one Algorithm-2 strand-pair computation across
// compilers (the verifier hot path).
func BenchmarkVCP(b *testing.B) {
	prepare := func(tcName string) []*vcp.Prepared {
		p := microProc(b, tcName)
		g, _ := cfg.Build(p)
		lp, _ := lift.LiftProc(g)
		var out []*vcp.Prepared
		for _, s := range strand.FromProc(lp) {
			if s.NumVars() >= 5 {
				out = append(out, vcp.Prepare(s, vcp.Default()))
			}
		}
		return out
	}
	qs := prepare("gcc-4.9")
	ts := prepare("icc-15.0.1")
	if len(qs) == 0 || len(ts) == 0 {
		b.Fatal("no strands")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			for _, t := range ts {
				vcp.Compute(q, t, vcp.Default())
			}
		}
	}
}

// BenchmarkFingerprints measures one γ-loop evaluation of a compiled
// strand — the innermost verifier operation — under the scalar
// reference interpreter and the batched SoA kernel. The batch
// sub-benchmark holds a pooled kernel across iterations the way
// vcp.ComputeWithStats holds one across a γ enumeration, so its
// allocs/op is the γ-loop allocation count (the kernel contract is 0).
func BenchmarkFingerprints(b *testing.B) {
	p := microProc(b, "gcc-4.9")
	g, _ := cfg.Build(p)
	lp, _ := lift.LiftProc(g)
	var best *strand.Strand
	for _, s := range strand.FromProc(lp) {
		if best == nil || s.NumVars() > best.NumVars() {
			best = s
		}
	}
	if best == nil {
		b.Fatal("no strands")
	}
	prog, err := smt.CompileStrand(best.Stmts, best.Inputs)
	if err != nil {
		b.Fatal(err)
	}
	if !prog.BatchOK() {
		b.Fatal("bench strand rejected by the kernel's static typing")
	}
	slots := make([]int, len(best.Inputs))
	for i := range slots {
		slots[i] = i
	}
	k := smt.DefaultSamples
	b.Run("kernel=scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog.Fingerprints(slots, k)
		}
	})
	b.Run("kernel=batch", func(b *testing.B) {
		kern := prog.AcquireKernel(k)
		defer prog.ReleaseKernel(kern)
		kern.Fingerprints(slots) // evaluate the γ-invariant prefix once, as Compute does
		pre, tot := prog.InstrCounts()
		b.ReportMetric(float64(pre)/float64(tot), "prefix-frac")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kern.Fingerprints(slots)
		}
	})
	// The γ-batch sweep: each iteration binds G distinct assignments and
	// flushes them through one suffix execution, the steady-state shape
	// of the batched γ loop. ns/op is per flush; the ns/γ metric is the
	// amortized per-correspondence cost the dispatch floor bounds —
	// compare it across widths (BENCH_kernel.json records the sweep).
	for _, g := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("gamma=%d", g), func(b *testing.B) {
			kern := prog.AcquireKernelBatch(k, g)
			defer prog.ReleaseKernel(kern)
			rows := make([][]int, g)
			for r := range rows {
				// Distinct rotations: every row is a different γ, so the
				// refill path sees realistic per-row slot churn.
				rot := make([]int, len(best.Inputs))
				for i := range rot {
					rot[i] = (i + r) % len(best.Inputs)
				}
				rows[r] = rot
			}
			for r, sl := range rows {
				kern.BindRow(r, sl)
			}
			kern.FingerprintsRows(g) // prefix + lane warm-up outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r, sl := range rows {
					kern.BindRow(r, sl)
				}
				kern.FingerprintsRows(g)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*g), "ns/γ")
		})
	}
}

// BenchmarkQuery measures one full query against a small database (the
// end-to-end figure the paper reports as ~3 minutes per pair on their
// 8-core machine; see EXPERIMENTS.md for our full-scale timing). The
// prefilter=off/lsh sub-benchmarks share everything but the sketch
// prefilter; the reported verifier-calls/op metric is the work the
// sound injectability core saves (cumulative calls over all iterations
// divided by N — the VCP memo cache makes iterations after the first
// nearly call-free, so compare modes at equal -benchtime).
// Set ESH_BENCH_GAMMA to sweep the γ-batch width without changing the
// sub-benchmark names (so baseline comparisons line up across widths);
// unset, the default width applies.
func BenchmarkQuery(b *testing.B) {
	prog := minic.MustParse(microSrc)
	q := microProc(b, "clang-3.5")
	gammaW := 0
	if s := os.Getenv("ESH_BENCH_GAMMA"); s != "" {
		w, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("ESH_BENCH_GAMMA=%q: %v", s, err)
		}
		gammaW = w
	}
	for _, mode := range []string{core.PrefilterOff, core.PrefilterLSH} {
		b.Run("prefilter="+mode, func(b *testing.B) {
			opts := core.Options{Prefilter: mode}
			opts.VCP.GammaBatch = gammaW
			db := core.NewDB(opts)
			for _, tc := range compile.Toolchains() {
				p, err := compile.Compile(prog, "bench_fn", tc, compile.O2())
				if err != nil {
					b.Fatal(err)
				}
				p.Name = "bench_fn@" + tc.Name()
				if err := db.AddTarget(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.Stats().VerifierCalls)/float64(b.N), "verifier-calls/op")
		})
	}
}

// BenchmarkQueryScale measures how query cost scales with corpus size
// under both retrieval modes. The corpus grows 1x/4x/8x in procedure
// count via synthetic decoy packages; both modes run the same heuristic
// prefilter settings (LSH 12x6, suggested containment threshold) so the
// only difference is stage 3's loop shape: the scan walks every target
// strand per query strand, the probe looks up band buckets in the
// retrieval table. The verifier-calls/op and cands/probe metrics are
// the scaling story — scan work grows with the corpus, probe work
// tracks the candidate sets, which banding keeps flat. Recorded in
// BENCH_retrieval.json; CI's scale-smoke asserts the shape cheaply.
func BenchmarkQueryScale(b *testing.B) {
	var tcs []compile.Toolchain
	for _, n := range []string{"gcc-4.9", "clang-3.5"} {
		tc, ok := compile.ByName(n)
		if !ok {
			b.Fatalf("unknown toolchain %q", n)
		}
		tcs = append(tcs, tc)
	}
	qtc, _ := compile.ByName("clang-3.5")
	q, err := corpus.CompileVuln(corpus.Vulns()[0], qtc, false)
	if err != nil {
		b.Fatal(err)
	}
	// Each synthetic variant contributes 4 procedures per toolchain, so
	// against the 226-procedure two-toolchain base these land on
	// 226/906/1810 targets — 1x/4x/8x to within half a percent (the
	// exact counts are reported as the targets metric).
	scales := []struct {
		name  string
		synth int
	}{{"1x", 0}, {"4x", 85}, {"8x", 198}}
	for _, mode := range []string{core.RetrievalScan, core.RetrievalProbe} {
		for _, sc := range scales {
			b.Run("retrieval="+mode+"/scale="+sc.name, func(b *testing.B) {
				procs, err := corpus.Build(corpus.BuildConfig{
					Toolchains:    tcs,
					SynthVariants: sc.synth,
				})
				if err != nil {
					b.Fatal(err)
				}
				db := core.NewDB(core.Options{
					Retrieval:         mode,
					Prefilter:         core.PrefilterLSH,
					LSHBands:          12,
					LSHRows:           6,
					LSHMinContainment: sketch.SuggestedMinContainment,
				})
				for _, p := range procs {
					if err := db.AddTarget(p); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := db.Stats()
				b.ReportMetric(float64(st.VerifierCalls)/float64(b.N), "verifier-calls/op")
				if st.RetrievalProbes > 0 {
					b.ReportMetric(float64(st.RetrievalCandidates)/float64(st.RetrievalProbes), "cands/probe")
				}
				b.ReportMetric(float64(db.NumTargets()), "targets")
				b.ReportMetric(float64(db.NumUniqueStrands()), "strands")
			})
		}
	}
}

// BenchmarkRecorder measures the flight recorder's per-query tax: the
// span tree a query builds anyway is snapshotted, its stage timings and
// work counters are adopted into a QueryRecord, and the record is
// published into the lock-free ring — everything the server layer adds
// on top of the engine per request. bench-smoke divides this figure by
// BenchmarkQuery ns/op to hold the always-on recorder under 1% of a
// query.
func BenchmarkRecorder(b *testing.B) {
	rec := telemetry.NewRecorder(0, 0, time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := telemetry.StartSpan(context.Background(), "query")
		_, spVCP := telemetry.StartSpan(ctx, "vcp")
		spVCP.SetAttr("pairs", 128)
		spVCP.SetAttr("pairs_pruned", 64)
		spVCP.SetAttr("verifier_calls", 900)
		spVCP.SetAttr("kernel_batch", 1)
		spVCP.End()
		_, spStats := telemetry.StartSpan(ctx, "stats")
		spStats.End()
		root.End()
		qr := &telemetry.QueryRecord{ID: "bench", Kind: "query", Outcome: "completed"}
		qr.FillFromTrace(root.Snapshot())
		if rec.Record(qr) {
			b.Fatal("sub-second record classified slow")
		}
	}
	b.StopTimer()
	if got := rec.Total(); got != uint64(b.N) {
		b.Fatalf("recorder holds %d records, want %d", got, b.N)
	}
}

// BenchmarkGatewayQuery measures the scatter-gather cluster tier
// against the same corpus served whole: one query through a single
// in-process eshd server (the HTTP floor) vs through an eshgw gateway
// fanning out to two in-process shard servers and merging. The delta
// is the cluster tax — two HTTP legs, JSON partials, and the exact
// merge — paid for halving per-node corpus size.
func BenchmarkGatewayQuery(b *testing.B) {
	prog := minic.MustParse(microSrc)
	q := microProc(b, "clang-3.5")
	db := core.NewDB(core.Options{})
	for _, tc := range compile.Toolchains() {
		p, err := compile.Compile(prog, "bench_fn", tc, compile.O2())
		if err != nil {
			b.Fatal(err)
		}
		p.Name = "bench_fn@" + tc.Name()
		if err := db.AddTarget(p); err != nil {
			b.Fatal(err)
		}
	}
	ex := db.Export()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	scfg := server.Config{Logger: quiet}

	single, err := core.FromExport(ex)
	if err != nil {
		b.Fatal(err)
	}
	singleSrv := httptest.NewServer(server.New(single, scfg).Handler())
	defer singleSrv.Close()

	man, shardExs, err := shard.Split(ex, 2)
	if err != nil {
		b.Fatal(err)
	}
	var urls [][]string
	for s, se := range shardExs {
		sdb, err := core.FromExport(se)
		if err != nil {
			b.Fatalf("shard %d: %v", s, err)
		}
		ts := httptest.NewServer(server.New(sdb, scfg).Handler())
		defer ts.Close()
		urls = append(urls, []string{ts.URL})
	}
	gw, err := gateway.New(gateway.Config{Manifest: man, Shards: urls, Logger: quiet})
	if err != nil {
		b.Fatal(err)
	}
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	body, err := json.Marshal(server.QueryRequest{Asm: q.String(), Top: 10})
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, url string) {
		b.Helper()
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			b.Fatalf("query = %d: %s", resp.StatusCode, msg)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.Run("node=single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, singleSrv.URL)
		}
	})
	b.Run("fanout=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, gwSrv.URL)
		}
	})
}

// BenchmarkEmulator measures the machine emulator on the compiled loop.
func BenchmarkEmulator(b *testing.B) {
	p := microProc(b, "gcc-4.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := asm.NewMachine()
		m.AddProc(p)
		m.Regs[asm.RDI] = 0x4000
		m.Regs[asm.RSI] = 64
		m.Regs[asm.RDX] = 7
		if _, err := m.Run("bench_fn"); err != nil {
			b.Fatal(err)
		}
	}
}
